package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/wire"
)

// stubChecker is a SessionChecker that counts traffic and optionally reports
// a mismatch after a set number of items.
type stubChecker struct {
	mu         sync.Mutex
	events     uint64
	packets    int
	mismatchAt uint64 // report a mismatch once events reaches this (0 = never)
	trapCode   uint64
}

func (s *stubChecker) Packet(buf []byte) (*checker.Mismatch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.packets++
	s.events += uint64(len(buf)) // stand-in: a byte per "event"
	return s.maybeMismatch(), nil
}

func (s *stubChecker) Items(items []wire.Item) (*checker.Mismatch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events += uint64(len(items))
	return s.maybeMismatch(), nil
}

func (s *stubChecker) maybeMismatch() *checker.Mismatch {
	if s.mismatchAt > 0 && s.events >= s.mismatchAt {
		return &checker.Mismatch{Core: 1, Seq: s.events, PC: 0x8000_1000, Detail: "stub divergence"}
	}
	return nil
}

func (s *stubChecker) Finish() (Final, error) {
	return Final{TrapCode: s.trapCode}, nil
}

func (s *stubChecker) Events() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events
}

// startServer runs a server on a Unix socket in the test's temp dir and
// returns its dial spec.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(cfg)
	spec := "unix:" + filepath.Join(t.TempDir(), "difftestd.sock")
	l, err := Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		<-done
	})
	return srv, spec
}

func stubSessions(stub func() *stubChecker) NewSessionFunc {
	return func(Hello) (SessionChecker, error) { return stub(), nil }
}

func testHello() Hello {
	return Hello{DUT: "stub", Platform: "stub", Config: "Z", Workload: "stub"}
}

func TestServerCleanSession(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{trapCode: 0x29} }),
		Window:     4,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Window() != 4 {
		t.Fatalf("granted window %d, want 4", cl.Window())
	}
	for i := 0; i < 20; i++ {
		stop, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{1, 2}}})
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			t.Fatalf("send %d stopped a clean stream", i)
		}
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Finished || v.Mismatch != nil || v.TrapCode != 0x29 {
		t.Fatalf("clean session verdict %+v", v)
	}
	if v.Events != 20 {
		t.Fatalf("server checked %d events, want 20", v.Events)
	}
	served, mismatches, _ := srv.Stats()
	if served != 1 || mismatches != 0 {
		t.Fatalf("served=%d mismatches=%d after one clean session", served, mismatches)
	}
}

func TestServerMismatchVerdict(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{mismatchAt: 5} }),
		Window:     2,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	stopped := false
	for i := 0; i < 50 && !stopped; i++ {
		stopped, err = cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !stopped {
		t.Fatal("verdict never stopped the producer")
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Mismatch == nil {
		t.Fatalf("final verdict %+v carries no mismatch", v)
	}
	m := v.Mismatch.ToChecker()
	if m.Core != 1 || m.PC != 0x8000_1000 || m.Detail != "stub divergence" {
		t.Fatalf("mismatch diagnosis lost in transit: %+v", m)
	}
	_, mismatches, _ := srv.Stats()
	if mismatches != 1 {
		t.Fatalf("mismatches=%d, want 1", mismatches)
	}
}

func TestServerRejectsProtocolMismatch(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
	})
	// Dial pins Proto/WireDigest itself, so speak the handshake by hand.
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	h := testHello()
	h.Proto = ProtoVersion + 1
	h.WireDigest = event.FormatDigest()
	if err := conn.WriteFrame(FrameHello, encodeJSON(&h)); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(payload)
	if fh.Type != FrameErrorInfo {
		t.Fatalf("server answered frame type %d, want FrameError", fh.Type)
	}
	var ei ErrorInfo
	if err := decodeJSON(fh.Type, payload, &ei); err != nil {
		t.Fatal(err)
	}
	if ei.Code != "handshake" || !strings.Contains(ei.Msg, "protocol version") {
		t.Fatalf("rejection %+v does not name the protocol version", ei)
	}
}

func TestServerRejectsWireDigestDrift(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
	})
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	h := testHello()
	h.Proto = ProtoVersion
	h.WireDigest = event.FormatDigest() ^ 1 // one bit of codec drift
	if err := conn.WriteFrame(FrameHello, encodeJSON(&h)); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(payload)
	var ei ErrorInfo
	if fh.Type != FrameErrorInfo || decodeJSON(fh.Type, payload, &ei) != nil {
		t.Fatalf("expected a FrameError rejection, got type %d", fh.Type)
	}
	if !strings.Contains(ei.Msg, "digest") {
		t.Fatalf("rejection %q does not name the wire digest", ei.Msg)
	}
}

func TestServerRejectsSessionBuildError(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: func(h Hello) (SessionChecker, error) {
			return nil, fmt.Errorf("unknown DUT %q", h.DUT)
		},
	})
	_, err := Dial(spec, testHello(), ClientConfig{})
	var ei *ErrorInfo
	if !errors.As(err, &ei) || ei.Code != "handshake" {
		t.Fatalf("dial error %v, want a handshake ErrorInfo", err)
	}
}

func TestServerMaxSessions(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession:  stubSessions(func() *stubChecker { return &stubChecker{} }),
		MaxSessions: 1,
	})
	first, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()

	// The slot is taken; waiting for the refusal synchronizes on the server
	// having fully admitted the first session.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err = Dial(spec, testHello(), ClientConfig{})
		var ei *ErrorInfo
		if errors.As(err, &ei) && ei.Code == "overloaded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("second session was not refused as overloaded (last err: %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	if _, err := first.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestServerReapsIdleSessions(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:  stubSessions(func() *stubChecker { return &stubChecker{} }),
		IdleTimeout: 50 * time.Millisecond,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Send nothing; the server must reap the session and say why.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, reaped := srv.Stats()
		if reaped == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle session was never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cl.Finish(); err == nil {
		t.Fatal("Finish succeeded on a reaped session")
	}
}

func TestServerConcurrentSessions(t *testing.T) {
	const sessions = 6
	srv, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:     2,
	})
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := Dial(spec, testHello(), ClientConfig{})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 25; j++ {
				if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(id), byte(j)}}}); err != nil {
					errs <- err
					return
				}
			}
			v, err := cl.Finish()
			if err != nil {
				errs <- err
				return
			}
			if !v.Finished || v.Events != 25 {
				errs <- fmt.Errorf("session %d: verdict %+v", id, v)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	served, _, _ := srv.Stats()
	if served != sessions {
		t.Fatalf("served %d sessions, want %d", served, sessions)
	}
}

func TestServerShutdownRefusesNewSessions(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(spec, testHello(), ClientConfig{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestServerHonorsWindowRequest(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:     16,
	})

	// A smaller request shrinks the grant to min(configured, requested)...
	h := testHello()
	h.WindowRequest = 4
	cl, err := Dial(spec, h, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.Window(); got != 4 {
		t.Fatalf("granted window %d, want the requested 4", got)
	}
	cl.Close()

	// ...while a larger request is capped at the server's bound.
	h.WindowRequest = 64
	cl, err = Dial(spec, h, ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if got := cl.Window(); got != 16 {
		t.Fatalf("granted window %d, want the server's 16", got)
	}
}

// TestConsumeRejectsNonDataFrames pins the consume() dispatch fix: the old
// switch read `default: // FrameItems`, so any unexpected frame type was
// silently decoded as bare wire items. The payload below decodes cleanly as
// one item — under the old arm every control-frame type here would have fed
// it to the checker instead of failing.
func TestConsumeRejectsNonDataFrames(t *testing.T) {
	payload, err := AppendItems(nil, []wire.Item{{Type: 1, Payload: []byte{1, 2, 3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	chk := &stubChecker{}
	srv := NewServer(ServerConfig{NewSession: stubSessions(func() *stubChecker { return chk })})
	for _, typ := range []uint8{FrameHello, FrameCredit, FrameErrorInfo, FrameResume, 200} {
		if _, err := srv.consume(chk, typ, payload, false); err == nil {
			t.Errorf("consume(frame type %d) = nil error, want a non-data-frame rejection", typ)
		}
	}
	if got := chk.Events(); got != 0 {
		t.Errorf("rejected frames fed %d events to the checker, want 0", got)
	}

	// The two data kinds still flow: the items payload checks one item.
	if _, err := srv.consume(chk, FrameItems, payload, false); err != nil {
		t.Fatalf("consume(FrameItems) = %v", err)
	}
	if got := chk.Events(); got != 1 {
		t.Errorf("consume(FrameItems) checked %d events, want 1", got)
	}
}
