// Package transport puts the wire codec on an actual wire: a length-prefixed
// binary framing layer over TCP or Unix-domain sockets that carries
// batch.Packet and wire.Item payloads between a DUT-side client and the
// difftestd verification server.
//
// Framing is deliberately minimal — a fixed-size, pointer-free header
// followed by an opaque payload:
//
//	offset  size  field
//	     0     4  Magic  ("DTH1", little-endian 0x31485444)
//	     4     1  Type   (frame type, Frame* constants)
//	     5     1  Flags  (reserved, 0)
//	     6     2  reserved
//	     8     4  Length (payload bytes; ≤ MaxFrameBytes)
//	    12     8  Seq    (per-connection frame sequence number)
//	    20     4  Check  (CRC32-C over bytes 0..20 and the payload)
//
// The trailing checksum is what keeps verdicts trustworthy on an imperfect
// link: a flipped byte anywhere in the frame is detected at the receiver as a
// transport fault (*FrameError wrapping ErrBadChecksum) instead of reaching
// the checker as a mutated event — the session then resumes and the clean
// windowed copy is retransmitted, so the verdict stays byte-identical to an
// in-process run.
//
// Data frames (FramePacket, FrameItems) carry verification traffic encoded
// by the existing zero-allocation codec; control frames (handshake, credit,
// verdict, resume) carry small JSON payloads — they run once per session or
// per window, never per event, so readability wins over bytes there.
//
// Flow control mirrors Replay's token-managed buffering (paper §4.4): the
// server grants a token window in the Welcome frame, the client spends one
// token per data frame, and the server returns tokens with Credit frames as
// it consumes. A client that exhausts the window stalls, and the stall count
// surfaces as measured backpressure in pipeline.Metrics.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// ProtoVersion is the handshake protocol version this binary speaks.
// Version 2 widened the header with the CRC32-C Check field and added the
// Resume/ResumeOK control frames.
const ProtoVersion = 2

// FrameMagic marks every frame header ("DTH1" little-endian).
const FrameMagic uint32 = 0x31485444

// Frame types.
const (
	// FrameHello opens a session: client → server, JSON Hello payload.
	FrameHello uint8 = 1
	// FrameWelcome accepts a session and grants the initial token window:
	// server → client, JSON Welcome payload.
	FrameWelcome uint8 = 2
	// FramePacket carries one batch-packed packet (tight or fixed-offset
	// packing), exactly the packet's used bytes. Costs one token.
	FramePacket uint8 = 3
	// FrameItems carries bare wire items (the per-event baseline config).
	// Costs one token.
	FrameItems uint8 = 4
	// FrameEnd marks the clean end of the client's stream; the server
	// flushes its software side and answers with FrameDone.
	FrameEnd uint8 = 5
	// FrameCredit returns tokens to the client: server → client, JSON
	// Credit payload. Its Ack field acknowledges consumed data frames and
	// prunes the client's replay window.
	FrameCredit uint8 = 6
	// FrameVerdict carries the checker's mismatch diagnosis back to the
	// client as soon as it is detected: server → client, JSON Verdict.
	FrameVerdict uint8 = 7
	// FrameDone closes a session with the final verdict: server → client,
	// JSON Verdict payload.
	FrameDone uint8 = 8
	// FrameError reports a fatal session error (handshake rejection, decode
	// failure, idle reap): JSON ErrorInfo payload.
	FrameErrorInfo uint8 = 9
	// FrameResume reopens a parked session after a connection loss:
	// client → server as the first frame of a fresh connection, JSON Resume
	// payload naming the session, its resume token, and the last contiguous
	// data frame each direction saw.
	FrameResume uint8 = 10
	// FrameResumeOK accepts a resume: server → client, JSON ResumeOK payload
	// telling the client how far the server got (so the replay window is
	// pruned and the rest retransmitted) and regranting the token window.
	FrameResumeOK uint8 = 11
	// FrameStats polls health/occupancy: sent with an empty payload as the
	// first frame of a connection it asks for the endpoint's counters, and
	// the JSON StatsInfo reply comes back under the same kind. The fleet
	// router polls every shard with it; admin tools poll the router.
	FrameStats uint8 = 12
	// FrameDrain withdraws a shard from a fleet router's placement: JSON
	// DrainRequest in, JSON DrainReply out. Active sessions on the drained
	// shard are redirected and migrate via the resume machinery.
	FrameDrain uint8 = 13
	// FrameRedirect tells a mid-session client to redial and resume: JSON
	// Redirect payload naming the reason. The fleet router sends it before
	// closing a connection whose shard is draining or dead; the client's
	// reconnect/resume machinery replays the unacknowledged suffix on the
	// fresh connection, which the router places on a different shard.
	FrameRedirect uint8 = 14
)

// MaxFrameBytes bounds a frame payload; a header announcing more is corrupt
// (or hostile) and the connection is dropped before any allocation.
const MaxFrameBytes = 1 << 24

// FrameHeaderSize is the encoded size of FrameHeader.
const FrameHeaderSize = 24

// frameCheckOffset is where the Check field sits: the checksum covers every
// header byte before it plus the payload.
const frameCheckOffset = 20

// castagnoli is the CRC32-C table shared by every frame checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FrameHeader is the fixed-size, pointer-free frame prelude. It implements
// event.WireCodec so difftestlint's wirestruct analyzer pins its layout: any
// field drift against EncodedSize fails `make lint`.
type FrameHeader struct {
	Magic  uint32
	Type   uint8
	Flags  uint8
	_      [2]uint8
	Length uint32
	Seq    uint64
	Check  uint32
}

// EncodedSize returns the fixed wire size of the header.
func (h *FrameHeader) EncodedSize() int { return FrameHeaderSize }

// AppendTo appends the header's wire encoding to dst.
func (h *FrameHeader) AppendTo(dst []byte) []byte {
	var b [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(b[0:], h.Magic)
	b[4] = h.Type
	b[5] = h.Flags
	binary.LittleEndian.PutUint32(b[8:], h.Length)
	binary.LittleEndian.PutUint64(b[12:], h.Seq)
	binary.LittleEndian.PutUint32(b[frameCheckOffset:], h.Check)
	return append(dst, b[:]...)
}

// FrameCheckOffset is the offset of the Check field within an encoded
// header. The frame checksum covers every header byte before it, extended
// over the payload.
const FrameCheckOffset = frameCheckOffset

// ChecksumFrame computes the frame checksum over the raw encoded header
// prefix (the FrameCheckOffset bytes before the Check field) extended over
// payload. Byte-exact over the wire image — unlike FrameHeader.Sum, which
// re-encodes from struct fields and so cannot see corruption in the reserved
// bytes — making it the verify-side primitive for transports that alias
// received frames in place.
func ChecksumFrame(prefix, payload []byte) uint32 {
	return crc32Frame(prefix, payload)
}

// Sum computes the checksum the Check field must carry for this header and
// payload: CRC32-C over the encoded header bytes before Check, extended over
// the payload.
func (h *FrameHeader) Sum(payload []byte) uint32 {
	var b [frameCheckOffset]byte
	binary.LittleEndian.PutUint32(b[0:], h.Magic)
	b[4] = h.Type
	b[5] = h.Flags
	binary.LittleEndian.PutUint32(b[8:], h.Length)
	binary.LittleEndian.PutUint64(b[12:], h.Seq)
	sum := crc32.Checksum(b[:], castagnoli)
	if len(payload) > 0 {
		sum = crc32.Update(sum, castagnoli, payload)
	}
	return sum
}

// Frame decode errors.
var (
	// ErrShortHeader marks a header shorter than FrameHeaderSize.
	ErrShortHeader = errors.New("transport: short frame header")
	// ErrBadMagic marks a header whose magic does not match FrameMagic.
	ErrBadMagic = errors.New("transport: bad frame magic")
	// ErrFrameTooLarge marks a header announcing more than MaxFrameBytes.
	ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameBytes")
	// ErrBadChecksum marks a frame whose CRC32-C does not cover its bytes —
	// the frame was corrupted in flight and must not reach the checker.
	ErrBadChecksum = errors.New("transport: frame checksum mismatch")
	// ErrSeqJump marks a frame whose sequence number is not the next
	// contiguous one for its connection direction.
	ErrSeqJump = errors.New("transport: frame sequence jump")
)

// DecodeFrom fills the header from the prefix of src and validates magic and
// length bounds, returning the number of bytes consumed. The checksum is not
// verified here — it covers the payload too, so Conn.ReadFrame verifies it
// once the payload is in hand.
func (h *FrameHeader) DecodeFrom(src []byte) (int, error) {
	if len(src) < FrameHeaderSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortHeader, len(src))
	}
	h.Magic = binary.LittleEndian.Uint32(src[0:])
	h.Type = src[4]
	h.Flags = src[5]
	h.Length = binary.LittleEndian.Uint32(src[8:])
	h.Seq = binary.LittleEndian.Uint64(src[12:])
	h.Check = binary.LittleEndian.Uint32(src[frameCheckOffset:])
	if h.Magic != FrameMagic {
		return 0, fmt.Errorf("%w: %#x", ErrBadMagic, h.Magic)
	}
	if h.Length > MaxFrameBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, h.Length)
	}
	return FrameHeaderSize, nil
}

// FrameError is the typed wrapper for every frame-level transport failure: a
// short or corrupt header, a checksum mismatch, a sequence jump, or a
// connection that died mid-frame. Op is "read" or "write"; Type and Seq
// locate the frame when they are known (a header that never arrived leaves
// them zero). It unwraps to the underlying cause, so errors.Is against
// io.ErrUnexpectedEOF, ErrBadChecksum, net timeouts, etc. all see through it.
type FrameError struct {
	Op   string // "read" or "write"
	Type uint8  // frame type, when the header was decoded
	Seq  uint64 // frame sequence, when the header was decoded
	Err  error
}

// Error formats the failure with its frame coordinates.
func (e *FrameError) Error() string {
	if e.Type == 0 && e.Seq == 0 {
		return fmt.Sprintf("transport: frame %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("transport: frame %s (type %d seq %d): %v", e.Op, e.Type, e.Seq, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is / errors.As.
func (e *FrameError) Unwrap() error { return e.Err }

// frameErr wraps err as a *FrameError unless it already is one.
func frameErr(op string, typ uint8, seq uint64, err error) error {
	var fe *FrameError
	if errors.As(err, &fe) {
		return err
	}
	return &FrameError{Op: op, Type: typ, Seq: seq, Err: err}
}
