// Package transport puts the wire codec on an actual wire: a length-prefixed
// binary framing layer over TCP or Unix-domain sockets that carries
// batch.Packet and wire.Item payloads between a DUT-side client and the
// difftestd verification server.
//
// Framing is deliberately minimal — a fixed-size, pointer-free header
// followed by an opaque payload:
//
//	offset  size  field
//	     0     4  Magic  ("DTH1", little-endian 0x31485444)
//	     4     1  Type   (frame type, Frame* constants)
//	     5     1  Flags  (reserved, 0)
//	     6     2  reserved
//	     8     4  Length (payload bytes; ≤ MaxFrameBytes)
//	    12     8  Seq    (per-direction frame sequence number)
//
// Data frames (FramePacket, FrameItems) carry verification traffic encoded
// by the existing zero-allocation codec; control frames (handshake, credit,
// verdict) carry small JSON payloads — they run once per session or per
// window, never per event, so readability wins over bytes there.
//
// Flow control mirrors Replay's token-managed buffering (paper §4.4): the
// server grants a token window in the Welcome frame, the client spends one
// token per data frame, and the server returns tokens with Credit frames as
// it consumes. A client that exhausts the window stalls, and the stall count
// surfaces as measured backpressure in pipeline.Metrics.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ProtoVersion is the handshake protocol version this binary speaks.
const ProtoVersion = 1

// FrameMagic marks every frame header ("DTH1" little-endian).
const FrameMagic uint32 = 0x31485444

// Frame types.
const (
	// FrameHello opens a session: client → server, JSON Hello payload.
	FrameHello uint8 = 1
	// FrameWelcome accepts a session and grants the initial token window:
	// server → client, JSON Welcome payload.
	FrameWelcome uint8 = 2
	// FramePacket carries one batch-packed packet (tight or fixed-offset
	// packing), exactly the packet's used bytes. Costs one token.
	FramePacket uint8 = 3
	// FrameItems carries bare wire items (the per-event baseline config).
	// Costs one token.
	FrameItems uint8 = 4
	// FrameEnd marks the clean end of the client's stream; the server
	// flushes its software side and answers with FrameDone.
	FrameEnd uint8 = 5
	// FrameCredit returns tokens to the client: server → client, JSON
	// Credit payload.
	FrameCredit uint8 = 6
	// FrameVerdict carries the checker's mismatch diagnosis back to the
	// client as soon as it is detected: server → client, JSON Verdict.
	FrameVerdict uint8 = 7
	// FrameDone closes a session with the final verdict: server → client,
	// JSON Verdict payload.
	FrameDone uint8 = 8
	// FrameError reports a fatal session error (handshake rejection, decode
	// failure, idle reap): JSON ErrorInfo payload.
	FrameError uint8 = 9
)

// MaxFrameBytes bounds a frame payload; a header announcing more is corrupt
// (or hostile) and the connection is dropped before any allocation.
const MaxFrameBytes = 1 << 24

// FrameHeaderSize is the encoded size of FrameHeader.
const FrameHeaderSize = 20

// FrameHeader is the fixed-size, pointer-free frame prelude. It implements
// event.WireCodec so difftestlint's wirestruct analyzer pins its layout: any
// field drift against EncodedSize fails `make lint`.
type FrameHeader struct {
	Magic  uint32
	Type   uint8
	Flags  uint8
	_      [2]uint8
	Length uint32
	Seq    uint64
}

// EncodedSize returns the fixed wire size of the header.
func (h *FrameHeader) EncodedSize() int { return FrameHeaderSize }

// AppendTo appends the header's wire encoding to dst.
func (h *FrameHeader) AppendTo(dst []byte) []byte {
	var b [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(b[0:], h.Magic)
	b[4] = h.Type
	b[5] = h.Flags
	binary.LittleEndian.PutUint32(b[8:], h.Length)
	binary.LittleEndian.PutUint64(b[12:], h.Seq)
	return append(dst, b[:]...)
}

// Frame decode errors.
var (
	// ErrShortHeader marks a header shorter than FrameHeaderSize.
	ErrShortHeader = errors.New("transport: short frame header")
	// ErrBadMagic marks a header whose magic does not match FrameMagic.
	ErrBadMagic = errors.New("transport: bad frame magic")
	// ErrFrameTooLarge marks a header announcing more than MaxFrameBytes.
	ErrFrameTooLarge = errors.New("transport: frame exceeds MaxFrameBytes")
)

// DecodeFrom fills the header from the prefix of src and validates magic and
// length bounds, returning the number of bytes consumed.
func (h *FrameHeader) DecodeFrom(src []byte) (int, error) {
	if len(src) < FrameHeaderSize {
		return 0, fmt.Errorf("%w: %d bytes", ErrShortHeader, len(src))
	}
	h.Magic = binary.LittleEndian.Uint32(src[0:])
	h.Type = src[4]
	h.Flags = src[5]
	h.Length = binary.LittleEndian.Uint32(src[8:])
	h.Seq = binary.LittleEndian.Uint64(src[12:])
	if h.Magic != FrameMagic {
		return 0, fmt.Errorf("%w: %#x", ErrBadMagic, h.Magic)
	}
	if h.Length > MaxFrameBytes {
		return 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, h.Length)
	}
	return FrameHeaderSize, nil
}
