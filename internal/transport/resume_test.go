package transport

import (
	"errors"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

// faultyFirstDial returns a Dial hook that routes the first connection
// through a faultnet wrapper with the given plan; every later dial is clean.
func faultyFirstDial(plan faultnet.Plan, j *faultnet.Journal) (func(string) (net.Conn, error), *atomic.Int32) {
	var dials atomic.Int32
	return func(spec string) (net.Conn, error) {
		sp, _ := ParseSpec(spec)
		nc, err := net.Dial(sp.Scheme, sp.Addr)
		if err != nil {
			return nil, err
		}
		if dials.Add(1) == 1 {
			return faultnet.New(nc, plan, j), nil
		}
		return nc, nil
	}, &dials
}

// resumeClientConfig is the fast-retry client every resume test uses.
func resumeClientConfig(dial func(string) (net.Conn, error)) ClientConfig {
	return ClientConfig{
		Resume:      true,
		MaxRetries:  4,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		JitterSeed:  7,
		Dial:        dial,
	}
}

// runResumeSession drives one clean 30-item session through a client and
// asserts the final verdict is exactly what a fault-free run produces.
func runResumeSession(t *testing.T, cl *Client) {
	t.Helper()
	for i := 0; i < 30; i++ {
		stop, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i), 0x5a}}})
		if err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if stop {
			t.Fatalf("send %d stopped a clean stream", i)
		}
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Finished || v.Mismatch != nil {
		t.Fatalf("verdict %+v, want clean finish", v)
	}
	if v.Events != 30 {
		t.Fatalf("server checked %d events, want exactly 30 (duplicate or lost frames)", v.Events)
	}
}

func TestResumeAfterMidFrameReset(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:       4,
		ResumeWindow: time.Minute,
	})
	j := faultnet.NewJournal(1)
	// Write index 5 = Hello + 4 data frames; offset 10 is inside the 24-byte
	// frame header, so the server sees a mid-frame ErrUnexpectedEOF.
	dial, dials := faultyFirstDial(faultnet.Plan{
		Seed:   1,
		Script: []faultnet.Op{{Index: 5, Kind: faultnet.Reset, Offset: 10}},
	}, j)
	cl, err := Dial(spec, testHello(), resumeClientConfig(dial))
	if err != nil {
		t.Fatal(err)
	}
	runResumeSession(t, cl)
	cl.Close()

	if got := dials.Load(); got < 2 {
		t.Fatalf("%d dials; the reset should have forced a reconnect\n%s", got, j)
	}
	if cl.Reconnects() == 0 {
		t.Fatalf("Reconnects=0 after an injected reset\n%s", j)
	}
	if cl.ReplayedFrames() == 0 {
		t.Fatalf("ReplayedFrames=0: the mid-frame casualty was never retransmitted\n%s", j)
	}
	parked, resumed := srv.ResumeStats()
	if parked == 0 || resumed == 0 {
		t.Fatalf("server parked=%d resumed=%d, want both > 0\n%s", parked, resumed, j)
	}
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance across resume: %d gets vs %d puts\n%s", gets1-gets0, puts1-puts0, j)
	}
}

func TestResumeAfterCorruptFrame(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:       4,
		ResumeWindow: time.Minute,
	})
	j := faultnet.NewJournal(2)
	// Corrupt a byte in the 3rd data frame: the server's CRC32-C rejects the
	// frame, parks the session, and the clean windowed copy is retransmitted
	// — the checker never sees the mutated payload.
	dial, _ := faultyFirstDial(faultnet.Plan{
		Seed:   2,
		Script: []faultnet.Op{{Index: 3, Kind: faultnet.Corrupt, Offset: 30}},
	}, j)
	cl, err := Dial(spec, testHello(), resumeClientConfig(dial))
	if err != nil {
		t.Fatal(err)
	}
	runResumeSession(t, cl)
	cl.Close()
	j.Release()

	if cl.Reconnects() == 0 {
		t.Fatalf("Reconnects=0 after an injected corruption\n%s", j)
	}
	if _, resumed := srv.ResumeStats(); resumed == 0 {
		t.Fatalf("server never resumed the corrupted session\n%s", j)
	}
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance across corrupt-resume: %d gets vs %d puts\n%s", gets1-gets0, puts1-puts0, j)
	}
}

func TestResumeAfterSilentStall(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:       4,
		IdleTimeout:  50 * time.Millisecond,
		ResumeWindow: time.Minute,
	})
	j := faultnet.NewJournal(3)
	// From write index 4 on, the first connection silently swallows every
	// byte: writes succeed, nothing arrives, no credits come back. Only the
	// client's stall timeout can notice.
	dial, _ := faultyFirstDial(faultnet.Plan{
		Seed:   3,
		Script: []faultnet.Op{{Index: 4, Kind: faultnet.Stall}},
	}, j)
	cfg := resumeClientConfig(dial)
	// Longer than the server's idle horizon so the session is parked (not
	// missing) by the time the client reconnects.
	cfg.StallTimeout = 300 * time.Millisecond
	cl, err := Dial(spec, testHello(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runResumeSession(t, cl)
	cl.Close()

	if cl.Reconnects() == 0 {
		t.Fatalf("Reconnects=0: the stall was never detected\n%s", j)
	}
	if _, resumed := srv.ResumeStats(); resumed == 0 {
		t.Fatalf("server never resumed the stalled session\n%s", j)
	}
}

func TestResumeRetryBudgetExhaustion(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	_, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:       2,
		ResumeWindow: time.Minute,
	})
	j := faultnet.NewJournal(4)
	var dials atomic.Int32
	dial := func(spec string) (net.Conn, error) {
		if dials.Add(1) > 1 {
			return nil, errors.New("induced dial failure")
		}
		sp, _ := ParseSpec(spec)
		nc, err := net.Dial(sp.Scheme, sp.Addr)
		if err != nil {
			return nil, err
		}
		return faultnet.New(nc, faultnet.Plan{
			Seed:   4,
			Script: []faultnet.Op{{Index: 3, Kind: faultnet.Reset, Offset: 5}},
		}, j), nil
	}
	cfg := resumeClientConfig(dial)
	cfg.MaxRetries = 2
	cl, err := Dial(spec, testHello(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 50; i++ {
		var stop bool
		stop, lastErr = cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}})
		if stop || lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		_, lastErr = cl.Finish()
	}
	if !errors.Is(lastErr, ErrSessionLost) {
		t.Fatalf("exhausted retry budget surfaced %v, want ErrSessionLost\n%s", lastErr, j)
	}
	if got := dials.Load(); got != 3 { // initial + MaxRetries failed redials
		t.Fatalf("%d dials, want 1 initial + 2 budgeted retries\n%s", got, j)
	}
	cl.Close()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance after budget exhaustion: %d gets vs %d puts\n%s",
			gets1-gets0, puts1-puts0, j)
	}
}

func TestResumeRefusedForUnknownSession(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		ResumeWindow: time.Minute,
	})
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	r := Resume{Proto: ProtoVersion, Session: 999, Token: 12345, Sent: 10}
	if err := conn.WriteFrame(FrameResume, encodeJSON(&r)); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(payload)
	var ei ErrorInfo
	if fh.Type != FrameErrorInfo || decodeJSON(fh.Type, payload, &ei) != nil || ei.Code != "resume" {
		t.Fatalf("unknown-session resume answered frame %d %+v, want a resume refusal", fh.Type, ei)
	}
}

// TestReadFrameDistinguishesCleanEOFFromMidFrame pins the regression the
// reset-mid-frame fault exposed: a peer closing between frames is a clean
// io.EOF, a peer dying inside a frame is a typed *FrameError wrapping
// io.ErrUnexpectedEOF — the transport must never confuse the two.
func TestReadFrameDistinguishesCleanEOFFromMidFrame(t *testing.T) {
	t.Run("clean close between frames", func(t *testing.T) {
		a, b := net.Pipe()
		t.Cleanup(func() { b.Close() })
		cw, cr := NewConn(a), NewConn(b)
		go func() {
			cw.WriteFrame(FrameEnd, nil)
			a.Close()
		}()
		if _, _, err := cr.ReadFrame(); err != nil {
			t.Fatal(err)
		}
		_, _, err := cr.ReadFrame()
		if err != io.EOF {
			t.Fatalf("close at a frame boundary: got %v, want bare io.EOF", err)
		}
		var fe *FrameError
		if errors.As(err, &fe) {
			t.Fatal("clean end-of-stream wrapped in a *FrameError")
		}
	})

	t.Run("faultnet reset mid-frame", func(t *testing.T) {
		a, b := net.Pipe()
		t.Cleanup(func() { a.Close(); b.Close() })
		j := faultnet.NewJournal(5)
		// Reset 10 bytes into the second frame's 24-byte header.
		fc := NewConn(faultnet.New(a, faultnet.Plan{
			Seed:   5,
			Script: []faultnet.Op{{Index: 1, Kind: faultnet.Reset, Offset: 10}},
		}, j))
		cr := NewConn(b)
		go func() {
			fc.WriteFrame(FrameItems, []byte{1, 2, 3, 4})
			fc.WriteFrame(FrameItems, []byte{5, 6, 7, 8})
		}()
		h, buf, err := cr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if h.Type != FrameItems {
			t.Fatalf("first frame type %d", h.Type)
		}
		releaseBuf(buf)
		_, _, err = cr.ReadFrame()
		var fe *FrameError
		if !errors.As(err, &fe) {
			t.Fatalf("mid-frame death: got %v, want a typed *FrameError\n%s", err, j)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("mid-frame death: got %v, want io.ErrUnexpectedEOF underneath\n%s", err, j)
		}
	})
}

// TestReadFrameRejectsCorruptionTyped: a flipped payload byte must surface
// as a *FrameError wrapping ErrBadChecksum, releasing the pooled buffer.
func TestReadFrameRejectsCorruptionTyped(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	j := faultnet.NewJournal(6)
	fc := NewConn(faultnet.New(a, faultnet.Plan{
		Seed:   6,
		Script: []faultnet.Op{{Index: 0, Kind: faultnet.Corrupt, Offset: 40}},
	}, j))
	cr := NewConn(b)
	go fc.WriteFrame(FramePacket, make([]byte, 64))
	_, _, err := cr.ReadFrame()
	var fe *FrameError
	if !errors.As(err, &fe) || !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("corrupt frame: got %v, want *FrameError wrapping ErrBadChecksum\n%s", err, j)
	}
	j.Release()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance on corrupt frame: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

// FuzzResumeFrame throws corrupt and truncated Resume control frames at a
// live server connection: every input must produce a frame-level refusal or
// a typed error — never a panic, never a pool imbalance.
func FuzzResumeFrame(f *testing.F) {
	f.Add([]byte(`{"session":1,"token":2,"sent":3}`), false)
	f.Add([]byte(`{"session":`), false)
	f.Add([]byte{0xff, 0xfe, 0x00}, true)
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, payload []byte, truncate bool) {
		gets0, puts0 := event.PoolStats()
		srv := NewServer(ServerConfig{
			NewSession:       stubSessions(func() *stubChecker { return &stubChecker{} }),
			ResumeWindow:     time.Minute,
			HandshakeTimeout: 2 * time.Second,
			WriteTimeout:     2 * time.Second,
		})
		a, b := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.serveSession(NewConn(b))
			b.Close()
		}()
		conn := NewConn(a)
		conn.WriteTimeout = 2 * time.Second
		conn.ReadTimeout = 2 * time.Second
		if truncate {
			// A frame that announces more payload than it delivers: the
			// server must see a mid-frame error, not hang or panic.
			h := FrameHeader{Magic: FrameMagic, Type: FrameResume, Length: uint32(len(payload) + 7)}
			h.Check = h.Sum(nil) // deliberately wrong for the real payload
			raw := h.AppendTo(nil)
			raw = append(raw, payload...)
			a.SetWriteDeadline(time.Now().Add(2 * time.Second))
			a.Write(raw)
			a.Close()
		} else {
			if err := conn.WriteFrame(FrameResume, payload); err == nil {
				// A malformed Resume earns a refusal; drain it so the
				// server's write completes.
				for {
					_, buf, err := conn.ReadFrame()
					releaseBuf(buf)
					if err != nil {
						break
					}
				}
			}
			a.Close()
		}
		<-done
		gets1, puts1 := event.PoolStats()
		if gets1-gets0 != puts1-puts0 {
			t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
		}
	})
}

// FuzzFaultedFrameStream runs a seeded probabilistic faultnet between a
// frame writer and reader: whatever the chaos does, the reader must finish
// with a clean io.EOF or a typed *FrameError — never a panic, never a
// leaked pooled buffer.
func FuzzFaultedFrameStream(f *testing.F) {
	f.Add(int64(1), uint8(4), []byte("abcdefgh"))
	f.Add(int64(99), uint8(9), []byte{})
	f.Add(int64(-7), uint8(2), []byte{0xde, 0xad, 0xbe, 0xef})
	f.Fuzz(func(t *testing.T, seed int64, nframes uint8, payload []byte) {
		if len(payload) > 1<<12 {
			payload = payload[:1<<12]
		}
		gets0, puts0 := event.PoolStats()
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		j := faultnet.NewJournal(seed)
		fw := NewConn(faultnet.New(a, faultnet.Plan{
			Seed:     seed,
			PCorrupt: 0.2, PReset: 0.1, PPartial: 0.3, PShortRead: 0.5,
		}, j))
		cr := NewConn(b)

		wdone := make(chan struct{})
		go func() {
			defer close(wdone)
			for i := 0; i < int(nframes)+1; i++ {
				if err := fw.WriteFrame(FramePacket, payload); err != nil {
					break
				}
			}
			a.Close()
		}()
		var streamErr error
		for {
			_, buf, err := cr.ReadFrame()
			releaseBuf(buf)
			if err != nil {
				streamErr = err
				break
			}
		}
		// Unblock a writer stuck mid-pipe (the reader gave up on an error)
		// and wait for it: journal adoption happens on the writer goroutine,
		// so the pool-balance check below must not race it.
		b.Close()
		<-wdone
		j.Release()
		if streamErr != io.EOF {
			var fe *FrameError
			if !errors.As(streamErr, &fe) {
				t.Fatalf("mangled stream produced an untyped error %T: %v\n%s", streamErr, streamErr, j)
			}
		}
		gets1, puts1 := event.PoolStats()
		if gets1-gets0 != puts1-puts0 {
			t.Fatalf("pool imbalance: %d gets vs %d puts\n%s", gets1-gets0, puts1-puts0, j)
		}
	})
}
