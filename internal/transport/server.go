package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/wire"
)

// Final is a session's end-of-stream outcome.
type Final struct {
	Mismatch *checker.Mismatch
	TrapCode uint64
}

// SessionChecker is the software side of one DUT session: unpacking plus
// REF+checker, owned entirely by that session (no state is shared between
// concurrent sessions). internal/cosim provides the production
// implementation; the split keeps transport free of a cosim dependency.
type SessionChecker interface {
	// Packet consumes one batch-packed packet. buf is a pooled buffer owned
	// by the caller; implementations must copy what they keep (the batch
	// unpacker's arena discipline) and must not retain buf.
	Packet(buf []byte) (*checker.Mismatch, error)
	// Items consumes bare wire items (the per-event baseline).
	Items(items []wire.Item) (*checker.Mismatch, error)
	// Finish flushes held-back state (unpacker tail, reorderer) and reports
	// the final verdict.
	Finish() (Final, error)
	// Events reports how many items were checked (session accounting).
	Events() uint64
}

// CoverageReporter is an optional SessionChecker extension: a session that
// can snapshot its checker's semantic coverage counters. The server attaches
// the snapshot to the closing Done verdict so fuzzing campaigns get the same
// feedback signal from remote shards as from in-process runs. Kept separate
// from SessionChecker so transports and fakes that don't track coverage need
// no stub.
type CoverageReporter interface {
	CoverageSnapshot() *checker.Coverage
}

// NewSessionFunc builds the software side for one accepted handshake. An
// error rejects the session with a FrameError.
type NewSessionFunc func(Hello) (SessionChecker, error)

// ServerConfig tunes difftestd's session handling.
type ServerConfig struct {
	// NewSession builds a per-session checker (required).
	NewSession NewSessionFunc

	// Window is the token window granted per session: the maximum data
	// frames a client may have in flight (0 = DefaultWindow).
	Window int
	// IdleTimeout bounds the wait for an inbound frame. A non-resumable
	// session idle that long is reaped with an "idle" FrameError; a
	// resumable one is parked for ResumeWindow instead
	// (0 = DefaultIdleTimeout).
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the wait for the Hello frame
	// (0 = DefaultHandshakeTimeout).
	HandshakeTimeout time.Duration
	// WriteTimeout bounds each outbound frame flush (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration
	// MaxSessions caps concurrent sessions; excess connects are refused
	// with an "overloaded" FrameError (0 = unlimited).
	MaxSessions int
	// ResumeWindow, when positive, makes sessions resumable: a session whose
	// connection breaks (mid-frame EOF, checksum mismatch, idle stall) is
	// parked for this long, keeping its checker state so a FrameResume on a
	// fresh connection continues exactly where the stream stopped. Zero
	// disables parking — broken sessions die, matching protocol v1 behavior.
	ResumeWindow time.Duration
	// Logf, when set, receives one line per session lifecycle step.
	Logf func(format string, args ...any)
}

// Server defaults.
const (
	DefaultWindow           = 16
	DefaultIdleTimeout      = 30 * time.Second
	DefaultHandshakeTimeout = 5 * time.Second
	DefaultWriteTimeout     = 10 * time.Second
	DefaultResumeWindow     = 2 * time.Minute
)

// session is the connection-independent state of one DUT session: everything
// that must survive a broken link for a resume to continue the stream.
type session struct {
	id     uint64
	token  uint64
	window int

	sess SessionChecker

	// dataRecvd counts data frames consumed this session — the server's
	// "Have" in the resume exchange and the Ack riding on every credit.
	dataRecvd uint64

	verdict       *checker.Mismatch // early mismatch, once diagnosed
	verdictEvents uint64
	final         *Verdict // Done payload, once the stream ended

	parkedAt time.Time
	resumes  int
}

// Server accepts concurrent DUT sessions, each with its own REF+checker.
type Server struct {
	cfg ServerConfig

	mu        sync.Mutex
	listeners map[FrameListener]struct{}
	conns     map[FrameTransport]struct{}
	parked    map[uint64]*session
	draining  bool

	wg         sync.WaitGroup
	nextID     atomic.Uint64
	tokenSalt  uint64
	active     atomic.Int64
	served     atomic.Uint64
	mismatches atomic.Uint64
	reaped     atomic.Uint64
	parkCount  atomic.Uint64
	resumed    atomic.Uint64
}

// NewServer builds a server; cfg.NewSession is required.
func NewServer(cfg ServerConfig) *Server {
	if cfg.NewSession == nil {
		panic("transport: ServerConfig.NewSession is required")
	}
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = DefaultIdleTimeout
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = DefaultHandshakeTimeout
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	return &Server{
		cfg:       cfg,
		listeners: make(map[FrameListener]struct{}),
		conns:     make(map[FrameTransport]struct{}),
		parked:    make(map[uint64]*session),
		tokenSalt: uint64(time.Now().UnixNano()),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// resumable reports whether this server parks broken sessions.
func (s *Server) resumable() bool { return s.cfg.ResumeWindow > 0 }

// ActiveSessions reports the number of sessions currently being served.
func (s *Server) ActiveSessions() int { return int(s.active.Load()) }

// Stats reports lifetime counters: sessions served to completion, mismatch
// verdicts delivered, and idle sessions reaped.
func (s *Server) Stats() (served, mismatches, reaped uint64) {
	return s.served.Load(), s.mismatches.Load(), s.reaped.Load()
}

// ResumeStats reports lifetime resume counters: sessions parked after a
// broken connection and successful resumes.
func (s *Server) ResumeStats() (parked, resumed uint64) {
	return s.parkCount.Load(), s.resumed.Load()
}

// Serve accepts sessions on l until the listener closes (Shutdown). Each
// session runs on its own goroutine. Wrap a bare net.Listener with
// NewNetListener; transport.Listen returns ready-to-serve listeners for
// every registered scheme.
func (s *Server) Serve(l FrameListener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return errors.New("transport: server is shut down")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := l.AcceptFrame()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			delete(s.listeners, l)
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.serveSession(conn)
		}()
	}
}

// Shutdown gracefully drains the server: listeners close immediately (no new
// sessions), active sessions run to their natural end, and when ctx expires
// the remaining connections are forced closed. Parked sessions are discarded
// — their checkers hold no pooled buffers, so dropping them is clean.
// Returns ctx.Err() when the drain was forced.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	s.parked = make(map[uint64]*session)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.SetDeadlineNow()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// refuse sends a FrameError and gives up on the session.
func (s *Server) refuse(conn FrameTransport, code, msg string) {
	s.logf("session refused (%s): %s", code, msg)
	conn.WriteFrame(FrameErrorInfo, encodeJSON(&ErrorInfo{Code: code, Msg: msg}))
}

// park shelves a session whose connection broke so a Resume can pick it up;
// expired parks are reaped on every park and resume.
func (s *Server) park(sn *session, why string) {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	sn.parkedAt = now
	s.parked[sn.id] = sn
	s.reapParkedLocked(now)
	s.parkCount.Add(1)
	s.logf("session %d: parked (%s), resumable for %v", sn.id, why, s.cfg.ResumeWindow)
}

// reapParkedLocked drops parked sessions past the resume window. Callers
// hold s.mu.
func (s *Server) reapParkedLocked(now time.Time) {
	for id, sn := range s.parked {
		if now.Sub(sn.parkedAt) > s.cfg.ResumeWindow {
			delete(s.parked, id)
			s.reaped.Add(1)
		}
	}
}

// serveSession runs one connection end to end: a Hello opens a fresh
// session, a Resume continues a parked one.
func (s *Server) serveSession(conn FrameTransport) {
	conn.SetWriteTimeout(s.cfg.WriteTimeout)
	conn.SetReadTimeout(s.cfg.HandshakeTimeout)

	h, payload, err := conn.ReadFrame()
	if err != nil {
		s.logf("session from %s: handshake read: %v", conn.RemoteAddr(), err)
		return
	}
	switch h.Type {
	case FrameHello:
		s.openSession(conn, h, payload)
	case FrameResume:
		s.resumeSession(conn, h, payload)
	case FrameStats:
		conn.ReleasePayload(payload)
		s.serveStats(conn)
	case FrameWelcome, FramePacket, FrameItems, FrameEnd, FrameCredit,
		FrameVerdict, FrameDone, FrameErrorInfo, FrameResumeOK,
		FrameDrain, FrameRedirect:
		// Only session-opening and stats kinds may start a connection; the
		// rest are refused by name so a new control frame fails lint here.
		// Drain and Redirect are fleet-router frames a shard never accepts.
		fallthrough
	default:
		conn.ReleasePayload(payload)
		s.refuse(conn, "handshake", fmt.Sprintf("expected Hello, Resume, or Stats, got frame type %d", h.Type))
	}
}

// StatsInfo snapshots the server's health/occupancy counters — the payload
// the FrameStats poll answers with and the one a fleet router's placement
// reads.
func (s *Server) StatsInfo() StatsInfo {
	served, mismatches, _ := s.Stats()
	return StatsInfo{
		Active:     s.ActiveSessions(),
		Parked:     s.parkCount.Load(),
		Resumed:    s.resumed.Load(),
		Served:     served,
		Mismatches: mismatches,
		Window:     s.cfg.Window,
		Capacity:   s.cfg.MaxSessions,
	}
}

// serveStats answers health polls on a dedicated connection: every inbound
// FrameStats gets a fresh StatsInfo reply, so a router can hold the
// connection open and poll on its own cadence. Any other frame (or EOF, or
// the idle deadline) ends the poll loop.
func (s *Server) serveStats(conn FrameTransport) {
	for {
		if err := conn.WriteFrame(FrameStats, encodeJSON(s.StatsInfo())); err != nil {
			return
		}
		conn.SetReadTimeout(s.cfg.IdleTimeout)
		h, payload, err := conn.ReadFrame()
		if err != nil {
			return
		}
		conn.ReleasePayload(payload)
		if h.Type != FrameStats {
			s.refuse(conn, "decode", fmt.Sprintf("expected Stats poll, got frame type %d", h.Type))
			return
		}
	}
}

// openSession handles a FrameHello: validate, build the checker, welcome.
func (s *Server) openSession(conn FrameTransport, h FrameHeader, payload []byte) {
	var hello Hello
	err := decodeJSON(h.Type, payload, &hello)
	conn.ReleasePayload(payload)
	if err != nil {
		s.refuse(conn, "handshake", err.Error())
		return
	}
	if hello.Proto != ProtoVersion {
		s.refuse(conn, "handshake", fmt.Sprintf("protocol version %d (server speaks %d)", hello.Proto, ProtoVersion))
		return
	}
	if d := event.FormatDigest(); hello.WireDigest != d {
		s.refuse(conn, "handshake", fmt.Sprintf(
			"wire-format digest %#x != server %#x — client and server built from different codec revisions, rerun go generate ./...",
			hello.WireDigest, d))
		return
	}
	if s.cfg.MaxSessions > 0 && int(s.active.Load()) >= s.cfg.MaxSessions {
		s.refuse(conn, "overloaded", fmt.Sprintf("at capacity (%d sessions)", s.cfg.MaxSessions))
		return
	}
	chk, err := s.cfg.NewSession(hello)
	if err != nil {
		s.refuse(conn, "handshake", err.Error())
		return
	}

	// The client may request a smaller credit window than the server's
	// configured one (the auto-tuner steers it per round); the grant is the
	// minimum of the two, so the server's bound stays authoritative.
	window := s.cfg.Window
	if hello.WindowRequest > 0 && hello.WindowRequest < window {
		window = hello.WindowRequest
	}

	id := s.nextID.Add(1)
	sn := &session{
		id:     id,
		token:  (id*0x9e3779b97f4a7c15 ^ s.tokenSalt) | 1,
		window: window,
		sess:   chk,
	}
	s.active.Add(1)
	defer s.active.Add(-1)
	s.logf("session %d: %s/%s/%s %s instrs=%d seed=%d from %s",
		id, hello.DUT, hello.Platform, hello.Config, hello.Workload,
		hello.TargetInstrs, hello.Seed, conn.RemoteAddr())

	w := Welcome{
		Proto: ProtoVersion, WireDigest: event.FormatDigest(),
		Session: id, Tokens: sn.window,
	}
	if s.resumable() {
		w.Resumable = true
		w.ResumeToken = sn.token
	}
	if err := conn.WriteFrame(FrameWelcome, encodeJSON(&w)); err != nil {
		s.logf("session %d: welcome write: %v", id, err)
		return
	}

	conn.SetReadTimeout(s.cfg.IdleTimeout)
	s.runSession(conn, sn)
}

// resumeSession handles a FrameResume: look the parked session up, replay
// what the broken connection lost, continue the stream.
func (s *Server) resumeSession(conn FrameTransport, h FrameHeader, payload []byte) {
	var r Resume
	err := decodeJSON(h.Type, payload, &r)
	conn.ReleasePayload(payload)
	if err != nil {
		s.refuse(conn, "resume", err.Error())
		return
	}
	if r.Proto != ProtoVersion {
		s.refuse(conn, "resume", fmt.Sprintf("protocol version %d (server speaks %d)", r.Proto, ProtoVersion))
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.reapParkedLocked(now)
	sn := s.parked[r.Session]
	if sn != nil && sn.token == r.Token {
		delete(s.parked, r.Session)
	} else {
		sn = nil
	}
	s.mu.Unlock()
	if sn == nil {
		s.refuse(conn, "resume", fmt.Sprintf("unknown or expired session %d", r.Session))
		return
	}
	if r.Sent < sn.dataRecvd {
		// The client claims it sent fewer data frames than this session
		// consumed — the resume targets a different stream.
		s.refuse(conn, "resume", fmt.Sprintf(
			"client sent %d data frames but session %d consumed %d", r.Sent, r.Session, sn.dataRecvd))
		return
	}
	sn.resumes++
	s.resumed.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)
	s.logf("session %d: resumed (#%d) from %s: have=%d client sent=%d",
		sn.id, sn.resumes, conn.RemoteAddr(), sn.dataRecvd, r.Sent)

	ok := ResumeOK{Have: sn.dataRecvd, Tokens: sn.window, Final: sn.final}
	if sn.verdict != nil && sn.final == nil {
		// Replay the early mismatch verdict the broken link may have lost.
		ok.Verdict = &Verdict{Mismatch: NewMismatchReport(sn.verdict), Events: sn.verdictEvents}
	}
	if err := conn.WriteFrame(FrameResumeOK, encodeJSON(&ok)); err != nil {
		s.logf("session %d: resume-ok write: %v", sn.id, err)
		s.park(sn, "resume-ok write failed")
		return
	}
	if sn.final != nil {
		// The session already completed; the ResumeOK carried the Done
		// payload. Park it again so even a lost ResumeOK can be retried
		// until the resume window closes.
		s.park(sn, "completed, awaiting client ack of final verdict")
		return
	}

	conn.SetReadTimeout(s.cfg.IdleTimeout)
	s.runSession(conn, sn)
}

// runSession is the per-session data loop. Every inbound data frame costs
// the client a token; the credit returning it is sent only after the frame's
// pooled buffer has been consumed and released, so the window also bounds
// the server's buffered bytes. Each credit also acknowledges the consumed
// prefix (Credit.Ack) so the client prunes its replay window.
func (s *Server) runSession(conn FrameTransport, sn *session) {
	id := sn.id
	for {
		h, payload, err := conn.ReadFrame()
		if err != nil {
			if isTimeout(err) {
				if s.resumable() {
					s.park(sn, "idle")
					return
				}
				s.reaped.Add(1)
				s.logf("session %d: idle for %v, reaping", id, s.cfg.IdleTimeout)
				conn.WriteFrame(FrameErrorInfo, encodeJSON(&ErrorInfo{
					Code: "idle", Msg: fmt.Sprintf("no frame for %v", s.cfg.IdleTimeout)}))
				return
			}
			// Clean EOF between frames and broken streams alike: the
			// connection is gone, but the session can continue on a new one.
			if s.resumable() {
				s.park(sn, fmt.Sprintf("connection lost: %v", err))
				return
			}
			s.logf("session %d: read: %v", id, err)
			return
		}
		switch h.Type {
		case FramePacket, FrameItems:
			m, err := s.consume(sn.sess, h.Type, payload, sn.verdict != nil)
			conn.ReleasePayload(payload)
			if err != nil {
				// The checksum held, so this is a malformed payload from the
				// client itself, not line noise — a fatal protocol error, not
				// a resumable fault.
				s.logf("session %d: decode: %v", id, err)
				conn.WriteFrame(FrameErrorInfo, encodeJSON(&ErrorInfo{Code: "decode", Msg: err.Error()}))
				return
			}
			sn.dataRecvd++
			// The frame is consumed: return its token before the verdict so
			// a stopped client never deadlocks holding zero tokens.
			if err := conn.WriteFrame(FrameCredit, encodeJSON(&Credit{Tokens: 1, Ack: sn.dataRecvd})); err != nil {
				s.logf("session %d: credit write: %v", id, err)
				if s.resumable() {
					s.park(sn, "credit write failed")
				}
				return
			}
			if m != nil && sn.verdict == nil {
				sn.verdict = m
				sn.verdictEvents = sn.sess.Events()
				s.mismatches.Add(1)
				s.logf("session %d: mismatch: %v", id, m)
				if err := conn.WriteFrame(FrameVerdict, encodeJSON(&Verdict{
					Mismatch: NewMismatchReport(m), Events: sn.verdictEvents,
				})); err != nil {
					s.logf("session %d: verdict write: %v", id, err)
					if s.resumable() {
						s.park(sn, "verdict write failed")
					}
					return
				}
			}
		case FrameEnd:
			conn.ReleasePayload(payload)
			v := Verdict{Mismatch: NewMismatchReport(sn.verdict), Events: sn.sess.Events()}
			if sn.verdict == nil {
				fin, err := sn.sess.Finish()
				if err != nil {
					s.logf("session %d: finish: %v", id, err)
					conn.WriteFrame(FrameErrorInfo, encodeJSON(&ErrorInfo{Code: "internal", Msg: err.Error()}))
					return
				}
				if fin.Mismatch != nil {
					s.mismatches.Add(1)
					v.Mismatch = NewMismatchReport(fin.Mismatch)
				} else {
					v.Finished = true
					v.TrapCode = fin.TrapCode
				}
				v.Events = sn.sess.Events()
			}
			if cr, ok := sn.sess.(CoverageReporter); ok {
				v.Coverage = cr.CoverageSnapshot()
			}
			sn.final = &v
			s.served.Add(1)
			err := conn.WriteFrame(FrameDone, encodeJSON(&v))
			if err != nil {
				s.logf("session %d: done write: %v", id, err)
			}
			if s.resumable() {
				// Even after a successful write the client may never see the
				// Done frame (stalled link); keep the completed session
				// resumable so the final verdict can be replayed.
				s.park(sn, "completed")
			}
			s.logf("session %d: done (finished=%v mismatch=%v, %d events)",
				id, v.Finished, v.Mismatch != nil, v.Events)
			return
		case FrameHello, FrameWelcome, FrameCredit, FrameVerdict, FrameDone,
			FrameErrorInfo, FrameResume, FrameResumeOK, FrameStats,
			FrameDrain, FrameRedirect:
			// Handshake, server-to-client, and fleet-control kinds are
			// protocol errors once the session is streaming — same teardown
			// as corruption.
			fallthrough
		default:
			conn.ReleasePayload(payload)
			s.logf("session %d: unexpected frame type %d", id, h.Type)
			conn.WriteFrame(FrameErrorInfo, encodeJSON(&ErrorInfo{
				Code: "decode", Msg: fmt.Sprintf("unexpected frame type %d", h.Type)}))
			return
		}
	}
}

// consume feeds one data frame to the session checker. After a verdict the
// stream is no longer checked — the client's in-flight window still drains
// through here so every pooled buffer is read and released.
func (s *Server) consume(sess SessionChecker, typ uint8, payload []byte, stopped bool) (*checker.Mismatch, error) {
	if stopped {
		return nil, nil
	}
	switch typ {
	case FramePacket:
		return sess.Packet(payload)
	case FrameItems:
		items, err := DecodeItems(payload)
		if err != nil {
			return nil, err
		}
		return sess.Items(items)
	case FrameHello, FrameWelcome, FrameEnd, FrameCredit, FrameVerdict,
		FrameDone, FrameErrorInfo, FrameResume, FrameResumeOK, FrameStats,
		FrameDrain, FrameRedirect:
		// This used to be the FrameItems arm's default: any unexpected type
		// was silently decoded as bare items. Only the two data kinds carry
		// checker traffic; everything else is a caller bug, not a stream.
		fallthrough
	default:
		return nil, fmt.Errorf("frame type %d is not a data frame", typ)
	}
}

// releaseBuf returns a frame payload to the buffer pool; nil (zero-length
// frame) needs no release.
func releaseBuf(buf []byte) {
	if buf != nil {
		event.PutBuf(buf)
	}
}

// isTimeout reports whether err is a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
