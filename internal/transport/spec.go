package transport

import (
	"fmt"
	"strings"
)

// Spec is one parsed transport address: a scheme naming the transport
// family and the family's address form.
//
//	tcp://host:port   TCP socket; Addr is "host:port"
//	unix:///path      Unix-domain socket; Addr is "/path"
//	shm:///path       shared-memory ring rendezvous directory; Addr is
//	                  "/path" plus any "?key=value" options the scheme
//	                  understands (shmring parses "?ring=<bytes>")
//
// Two legacy forms predate the unified syntax and stay accepted so existing
// flags and scripts keep working: "unix:<path>" and a bare "host:port"
// (TCP). Every binary — transport.Dial, difftestd -listen, difftest
// -remote — parses specs through this one helper.
type Spec struct {
	Scheme string // "tcp", "unix", "shm", or a registered scheme
	Addr   string
}

// String reassembles the canonical spec form.
func (s Spec) String() string { return s.Scheme + "://" + s.Addr }

// ParseSpec parses an address spec into its scheme and address. Unknown
// schemes parse fine — resolution against the registry happens at
// Dial/Listen time — but an empty address is rejected for every scheme.
func ParseSpec(spec string) (Spec, error) {
	if spec == "" {
		return Spec{}, fmt.Errorf("transport: empty address spec")
	}
	if scheme, rest, ok := strings.Cut(spec, "://"); ok {
		if scheme == "" {
			return Spec{}, fmt.Errorf("transport: address spec %q has an empty scheme", spec)
		}
		if rest == "" {
			return Spec{}, fmt.Errorf("transport: address spec %q has an empty address", spec)
		}
		return Spec{Scheme: scheme, Addr: rest}, nil
	}
	// Legacy "unix:<path>" (PR 4's original syntax).
	if path, ok := strings.CutPrefix(spec, "unix:"); ok {
		if path == "" {
			return Spec{}, fmt.Errorf("transport: address spec %q has an empty path", spec)
		}
		return Spec{Scheme: "unix", Addr: path}, nil
	}
	// Legacy bare "host:port".
	return Spec{Scheme: "tcp", Addr: spec}, nil
}
