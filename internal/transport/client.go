package transport

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/wire"
)

// ErrSessionLost marks a session that could not be recovered: the reconnect
// retry budget ran out, or the server refused the resume (unknown/expired
// session, token mismatch). Callers holding the full input stream — cosim's
// remote mode does — can degrade to in-process checking on this error.
var ErrSessionLost = errors.New("transport: session lost")

// Client retry defaults, used when ClientConfig.Resume is set and the knob
// is zero.
const (
	DefaultMaxRetries  = 5
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// ClientConfig tunes the DUT-side endpoint.
type ClientConfig struct {
	// DialTimeout bounds the connect + handshake (0 = 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each data-frame flush (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration

	// Resume enables session resume: the client keeps pooled copies of
	// unacknowledged data frames and, when the connection breaks, reconnects
	// with exponential backoff + jitter and continues the session from the
	// server's acknowledged prefix. Requires a server with a ResumeWindow.
	Resume bool
	// MaxRetries is the reconnect budget per disconnect (0 = DefaultMaxRetries).
	// When it runs out the session fails with ErrSessionLost.
	MaxRetries int
	// BackoffBase is the first retry delay; each retry doubles it up to
	// BackoffMax, jittered ±50% (0 = DefaultBackoffBase / DefaultBackoffMax).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StallTimeout, when positive, bounds how long a send may wait for a
	// window token or Finish may wait for the verdict before the connection
	// is declared silently stalled and recovery kicks in. Zero disables
	// stall detection (a stalled non-resumable session blocks, as in v1).
	StallTimeout time.Duration
	// JitterSeed seeds the backoff jitter stream so tests replay the exact
	// retry schedule (0 = a fixed default seed).
	JitterSeed int64

	// Dial, when set, replaces the network dial for both the initial
	// connection and every reconnect — the hook fault-injection tests use to
	// route connections through faultnet or to fail reconnects on purpose.
	Dial func(spec string) (net.Conn, error)
}

// pendingFrame is one unacknowledged data frame held for retransmission: a
// pooled copy of the payload, released when the server's Credit.Ack (or a
// ResumeOK.Have) covers its index.
type pendingFrame struct {
	idx uint64 // 1-based data-frame index within the session
	typ uint8
	buf []byte // pooled (event.GetBuf), exactly the payload bytes
}

// connGen is one connection generation: the framed transport, its token
// window, and the channels its reader goroutine uses to signal death. A
// reconnect builds a fresh generation; the producer goroutine is the only
// writer of Client.gen.
type connGen struct {
	conn   FrameTransport
	tokens chan struct{}

	dieOnce sync.Once
	err     error         // first conn-level failure, set before dead closes
	dead    chan struct{} // closed on conn-level failure (recoverable)
	exited  chan struct{} // closed when the reader goroutine returns
}

// die records a conn-level failure and wakes the producer.
func (g *connGen) die(err error) {
	g.dieOnce.Do(func() {
		g.err = err
		close(g.dead)
	})
}

// Client streams one DUT session to a difftestd server: data frames out
// under the token window, credits and verdicts in on a reader goroutine.
// Send methods are not goroutine-safe (one producer); the reader goroutine
// is internal. All recovery — backoff, redial, resume handshake,
// retransmission — runs on the producer goroutine; the reader only signals.
type Client struct {
	cfg     ClientConfig
	spec    string
	welcome Welcome

	gen *connGen // producer-owned; swapped on recovery

	// dataSent counts data frames sent this session (producer-owned); it is
	// the client's "Sent" in the resume exchange.
	dataSent uint64
	endSent  bool // producer-owned: FrameEnd went out at least once

	// stalls counts sends that found the window empty — the client-side
	// backpressure measurement (paper §4.4's token exhaustion).
	stalls     atomic.Uint64
	reconnects atomic.Uint64
	replayed   atomic.Uint64
	migrations atomic.Uint64

	stopped atomic.Bool // a verdict or error arrived; stop producing

	mu      sync.Mutex
	pending []pendingFrame // unacknowledged replay window, ascending idx
	acked   uint64         // highest Credit.Ack / ResumeOK.Have seen
	verdict *Verdict       // mismatch verdict (FrameVerdict), if any
	final   *Verdict       // FrameDone payload
	readErr error

	doneOnce sync.Once
	done     chan struct{} // closed on a terminal state: final verdict or fatal error

	rng *rand.Rand // backoff jitter; producer-owned
}

// Dial connects to a difftestd server (spec per ParseSpec: tcp://, unix://,
// shm://, or the legacy forms), performs the handshake, and starts the
// credit/verdict reader.
func Dial(spec string, hello Hello, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	if cfg.Resume {
		if cfg.MaxRetries <= 0 {
			cfg.MaxRetries = DefaultMaxRetries
		}
		if cfg.BackoffBase <= 0 {
			cfg.BackoffBase = DefaultBackoffBase
		}
		if cfg.BackoffMax <= 0 {
			cfg.BackoffMax = DefaultBackoffMax
		}
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = 0x6a69747465720a // "jitter"
	}

	c := &Client{
		cfg:  cfg,
		spec: spec,
		done: make(chan struct{}),
		rng:  rand.New(rand.NewPCG(uint64(seed), 0xbac0ff)),
	}
	conn, err := c.dialTransport()
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", spec, err)
	}
	conn.SetWriteTimeout(cfg.WriteTimeout)
	conn.SetReadTimeout(cfg.DialTimeout)

	hello.Proto = ProtoVersion
	hello.WireDigest = event.FormatDigest()
	if err := conn.WriteFrame(FrameHello, encodeJSON(&hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	h, payload, err := conn.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake read: %w", err)
	}
	// The payload must be fully consumed and released before readLoop takes
	// over as the transport's sole reader: on single-consumer transports (the
	// shm ring) a release racing a concurrent ReadFrame corrupts the cursor.
	switch h.Type {
	case FrameWelcome:
	case FrameErrorInfo:
		var ei ErrorInfo
		jerr := decodeJSON(h.Type, payload, &ei)
		conn.ReleasePayload(payload)
		conn.Close()
		if jerr != nil {
			return nil, jerr
		}
		return nil, &ei
	case FrameHello, FramePacket, FrameItems, FrameEnd, FrameCredit,
		FrameVerdict, FrameDone, FrameResume, FrameResumeOK, FrameStats,
		FrameDrain, FrameRedirect:
		// Declared kinds a server must never answer a Hello with: rejected
		// like corruption, but named so adding a control frame fails lint
		// until this site decides what to do with it.
		fallthrough
	default:
		conn.ReleasePayload(payload)
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: unexpected frame type %d", h.Type)
	}
	var w Welcome
	werr := decodeJSON(h.Type, payload, &w)
	conn.ReleasePayload(payload)
	if werr != nil {
		conn.Close()
		return nil, werr
	}
	if w.Tokens <= 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: server granted a %d-token window", w.Tokens)
	}

	c.welcome = w
	c.gen = newGen(conn, w.Tokens, w.Tokens)
	conn.SetReadTimeout(0) // the reader blocks until the server speaks or EOF
	go c.readLoop(c.gen)
	return c, nil
}

// dialTransport opens the framed transport: through the configured raw-dial
// hook (fault injection wraps net.Conns, so the hook result gets the socket
// framing) or by resolving the address spec against the scheme registry.
func (c *Client) dialTransport() (FrameTransport, error) {
	if c.cfg.Dial != nil {
		nc, err := c.cfg.Dial(c.spec)
		if err != nil {
			return nil, err
		}
		return NewConn(nc), nil
	}
	return DialFrame(c.spec, c.cfg.DialTimeout)
}

// newGen builds a connection generation with cap window tokens, avail of
// them immediately available (the rest are held by in-flight frames).
func newGen(conn FrameTransport, window, avail int) *connGen {
	g := &connGen{
		conn:   conn,
		tokens: make(chan struct{}, window),
		dead:   make(chan struct{}),
		exited: make(chan struct{}),
	}
	for i := 0; i < avail; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// resumeEnabled reports whether this session can recover from a broken
// connection: the client asked for it and the server granted a resume token.
func (c *Client) resumeEnabled() bool {
	return c.cfg.Resume && c.welcome.Resumable && c.welcome.ResumeToken != 0
}

// Session reports the server-assigned session id.
func (c *Client) Session() uint64 { return c.welcome.Session }

// Window reports the granted token window.
func (c *Client) Window() int { return c.welcome.Tokens }

// Stalls reports how many sends found the token window exhausted.
func (c *Client) Stalls() uint64 { return c.stalls.Load() }

// Reconnects reports how many successful resumes this session performed.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

// ReplayedFrames reports how many data frames were retransmitted from the
// replay window across all resumes.
func (c *Client) ReplayedFrames() uint64 { return c.replayed.Load() }

// Migrations reports how many resumes landed this session on a different
// backend shard (ResumeOK.Migrated — a fleet router moving the session).
func (c *Client) Migrations() uint64 { return c.migrations.Load() }

// LinkStats reports transport-level wait instrumentation when the underlying
// transport carries it (the shm ring's park counters); zero otherwise.
// Producer-goroutine only, like the send methods.
func (c *Client) LinkStats() LinkStats {
	if sr, ok := c.gen.conn.(StatsReporter); ok {
		return sr.LinkStats()
	}
	return LinkStats{}
}

// terminal closes done exactly once.
func (c *Client) terminal() { c.doneOnce.Do(func() { close(c.done) }) }

// readLoop drains server frames for one connection generation: credits
// refill the window and prune the replay window, a verdict stops production,
// Done finishes the session. Conn-level errors are recoverable — the loop
// signals gen.dead and exits, and the producer decides whether to resume.
func (c *Client) readLoop(gen *connGen) {
	defer close(gen.exited)
	for {
		h, payload, err := gen.conn.ReadFrame()
		if err != nil {
			gen.die(fmt.Errorf("transport: server connection: %w", err))
			return
		}
		switch h.Type {
		case FrameCredit:
			var cr Credit
			err := decodeJSON(h.Type, payload, &cr)
			gen.conn.ReleasePayload(payload)
			if err != nil {
				gen.die(err)
				return
			}
			c.pruneAcked(cr.Ack)
			for i := 0; i < cr.Tokens; i++ {
				select {
				case gen.tokens <- struct{}{}:
				default: // over-credit; the window cap is authoritative
				}
			}
		case FrameVerdict:
			var v Verdict
			err := decodeJSON(h.Type, payload, &v)
			gen.conn.ReleasePayload(payload)
			if err != nil {
				gen.die(err)
				return
			}
			c.mu.Lock()
			c.verdict = &v
			c.mu.Unlock()
			c.stopped.Store(true)
		case FrameDone:
			var v Verdict
			err := decodeJSON(h.Type, payload, &v)
			gen.conn.ReleasePayload(payload)
			if err != nil {
				gen.die(err)
				return
			}
			c.mu.Lock()
			c.final = &v
			c.mu.Unlock()
			c.stopped.Store(true)
			c.terminal()
			return
		case FrameErrorInfo:
			// The server speaks only to refuse or tear down: every error
			// frame is fatal for the session (a resumable server parks
			// silently instead of sending one).
			var ei ErrorInfo
			err := decodeJSON(h.Type, payload, &ei)
			gen.conn.ReleasePayload(payload)
			if err != nil {
				c.fatal(err)
			} else {
				c.fatal(&ei)
			}
			return
		case FrameRedirect:
			// A fleet router wants this session elsewhere (shard drain or
			// death). Treat it exactly like a lost connection: the producer's
			// recovery redials and resumes, and the router places the resumed
			// session on a healthy shard.
			var rd Redirect
			err := decodeJSON(h.Type, payload, &rd)
			gen.conn.ReleasePayload(payload)
			if err != nil {
				gen.die(err)
				return
			}
			gen.die(fmt.Errorf("transport: server redirect: %s", rd.Reason))
			return
		case FrameHello, FrameWelcome, FramePacket, FrameItems, FrameEnd,
			FrameResume, FrameResumeOK, FrameStats, FrameDrain:
			// Client-to-server kinds (and Welcome/ResumeOK, which belong to
			// the handshake phase, and the fleet poll/drain frames): fatal
			// mid-session, same as corruption.
			fallthrough
		default:
			gen.conn.ReleasePayload(payload)
			c.fatal(fmt.Errorf("transport: unexpected server frame type %d", h.Type))
			return
		}
	}
}

// fatal records the first unrecoverable error and unblocks everything.
func (c *Client) fatal(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
	c.stopped.Store(true)
	c.terminal()
}

func (c *Client) firstErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// pruneAcked releases replay-window copies the server has acknowledged.
func (c *Client) pruneAcked(ack uint64) {
	if ack == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ack > c.acked {
		c.acked = ack
	}
	for len(c.pending) > 0 && c.pending[0].idx <= c.acked {
		event.PutBuf(c.pending[0].buf)
		c.pending[0] = pendingFrame{}
		c.pending = c.pending[1:]
	}
}

// releasePending drains the replay window back to the buffer pool.
func (c *Client) releasePending() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.pending {
		event.PutBuf(c.pending[i].buf)
		c.pending[i] = pendingFrame{}
	}
	c.pending = c.pending[:0]
}

// take acquires one window token, counting a stall when the window is dry —
// this is where networked backpressure is measured. A dead connection or a
// silent stall triggers recovery (resume-enabled sessions reconnect; others
// fail). Returns false when the session stopped (verdict or error).
func (c *Client) take() bool {
	for {
		gen := c.gen
		select {
		case <-gen.tokens:
			return true
		case <-c.done:
			return false
		default:
		}
		c.stalls.Add(1)
		var stallC <-chan time.Time
		var stallT *time.Timer
		if c.cfg.StallTimeout > 0 {
			stallT = time.NewTimer(c.cfg.StallTimeout)
			stallC = stallT.C
		}
		got := false
		select {
		case <-gen.tokens:
			got = true
		case <-c.done:
		case <-gen.dead:
			c.recover(gen, "connection lost")
		case <-stallC:
			// Writes keep succeeding but no credit has come back for
			// StallTimeout: the link is silently stalled.
			c.recover(gen, "silent stall (no credit)")
		}
		if stallT != nil {
			stallT.Stop()
		}
		if got {
			return true
		}
		select {
		case <-c.done:
			return false
		default:
			// Recovery installed a fresh generation (with refilled tokens)
			// or a terminal state is racing in; re-run the fast path.
		}
	}
}

// recover rebuilds the session on a fresh connection: close the broken
// generation, back off, redial, resume, retransmit. Runs only on the
// producer goroutine. gen is the generation the caller observed dying —
// recovery is skipped if a previous call already replaced it. Returns false
// when the session reached a terminal state instead (final verdict, fatal
// error, retry budget exhausted).
func (c *Client) recover(gen *connGen, why string) bool {
	if c.gen != gen {
		return true // an earlier recover already replaced this generation
	}
	gen.conn.Close()
	<-gen.exited // the reader no longer touches pending or the conn

	// The reader may have delivered a terminal frame before the conn died.
	select {
	case <-c.done:
		return false
	default:
	}
	if !c.resumeEnabled() {
		err := gen.err
		if err == nil {
			err = fmt.Errorf("transport: connection lost (%s)", why)
		}
		c.fatal(err)
		return false
	}

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxRetries; attempt++ {
		time.Sleep(c.backoff(attempt))
		ng, err := c.redial()
		if err == nil {
			c.gen = ng
			c.reconnects.Add(1)
			return true
		}
		lastErr = err
		if errors.Is(err, ErrSessionLost) {
			// The server refused the resume outright; retrying cannot help.
			c.fatal(err)
			return false
		}
	}
	c.fatal(fmt.Errorf("transport: %s after %d reconnect attempts (%s, last: %v): %w",
		why, c.cfg.MaxRetries, c.spec, lastErr, ErrSessionLost))
	return false
}

// backoff computes the jittered exponential delay for a retry attempt.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Jitter ±50% so a fleet of clients does not reconnect in lockstep.
	return time.Duration(float64(d) * (0.5 + c.rng.Float64()))
}

// redial performs one resume attempt: dial, FrameResume handshake, prune to
// the server's acknowledged prefix, retransmit the rest, refill tokens, and
// restart the reader. An error wrapping ErrSessionLost is a refusal (do not
// retry); any other error is this attempt failing.
func (c *Client) redial() (*connGen, error) {
	conn, err := c.dialTransport()
	if err != nil {
		return nil, err
	}
	conn.SetWriteTimeout(c.cfg.WriteTimeout)
	conn.SetReadTimeout(c.cfg.DialTimeout)

	c.mu.Lock()
	acked := c.acked
	c.mu.Unlock()
	r := Resume{
		Proto:   ProtoVersion,
		Session: c.welcome.Session,
		Token:   c.welcome.ResumeToken,
		Sent:    c.dataSent,
		Acked:   acked,
	}
	if err := conn.WriteFrame(FrameResume, encodeJSON(&r)); err != nil {
		conn.Close()
		return nil, err
	}
	h, payload, err := conn.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch h.Type {
	case FrameResumeOK:
	case FrameErrorInfo:
		var ei ErrorInfo
		jerr := decodeJSON(h.Type, payload, &ei)
		conn.ReleasePayload(payload)
		conn.Close()
		if jerr != nil {
			return nil, jerr
		}
		return nil, fmt.Errorf("transport: resume refused: %v: %w", &ei, ErrSessionLost)
	case FrameHello, FrameWelcome, FramePacket, FrameItems, FrameEnd,
		FrameCredit, FrameVerdict, FrameDone, FrameResume, FrameStats,
		FrameDrain, FrameRedirect:
		// A Resume is answered with ResumeOK or ErrorInfo, nothing else.
		fallthrough
	default:
		conn.ReleasePayload(payload)
		conn.Close()
		return nil, fmt.Errorf("transport: resume: unexpected frame type %d", h.Type)
	}
	var ok ResumeOK
	jerr := decodeJSON(h.Type, payload, &ok)
	conn.ReleasePayload(payload)
	if jerr != nil {
		conn.Close()
		return nil, jerr
	}

	// Everything the server consumed needs no retransmission.
	c.pruneAcked(ok.Have)
	if ok.Migrated {
		c.migrations.Add(1)
	}
	if ok.Verdict != nil {
		c.mu.Lock()
		if c.verdict == nil {
			c.verdict = ok.Verdict
		}
		c.mu.Unlock()
		c.stopped.Store(true)
	}
	if ok.Final != nil {
		// The session already completed server-side; the resume delivered
		// the Done payload the broken link lost. No retransmission needed.
		c.mu.Lock()
		c.final = ok.Final
		c.mu.Unlock()
		c.stopped.Store(true)
		// The handshake read bound must not outlive the handshake even on
		// this readerless path: Shutdown still drains the conn, and a stale
		// DialTimeout deadline would fail that read with a bogus timeout.
		conn.SetReadTimeout(0)
		g := newGen(conn, c.welcome.Tokens, 0)
		close(g.exited) // no reader: the server side of this conn is done
		c.terminal()
		return g, nil
	}

	// Retransmit the unacknowledged tail in order on the fresh connection.
	c.mu.Lock()
	tail := make([]pendingFrame, len(c.pending))
	copy(tail, c.pending)
	c.mu.Unlock()
	for _, pf := range tail {
		if err := conn.WriteFrame(pf.typ, pf.buf); err != nil {
			conn.Close()
			return nil, err
		}
		c.replayed.Add(1)
	}
	if c.endSent {
		if err := conn.WriteFrame(FrameEnd, nil); err != nil {
			conn.Close()
			return nil, err
		}
	}

	// In-flight (retransmitted) frames still hold their tokens; only the
	// remainder of the window is immediately available.
	window := c.welcome.Tokens
	if ok.Tokens > 0 && ok.Tokens < window {
		window = ok.Tokens
	}
	avail := window - len(tail)
	if avail < 0 {
		avail = 0
	}
	g := newGen(conn, window, avail)
	conn.SetReadTimeout(0)
	go c.readLoop(g)
	return g, nil
}

// sendData streams one data frame: token, replay-window copy, write. On a
// write failure the frame is already windowed, so recovery retransmits it.
func (c *Client) sendData(typ uint8, payload []byte) (stop bool, err error) {
	if c.stopped.Load() || !c.take() {
		return true, c.firstErr()
	}
	c.dataSent++
	if c.resumeEnabled() {
		buf := event.GetBuf(len(payload))[:len(payload)]
		copy(buf, payload)
		c.mu.Lock()
		c.pending = append(c.pending, pendingFrame{idx: c.dataSent, typ: typ, buf: buf})
		c.mu.Unlock()
	}
	if werr := c.gen.conn.WriteFrame(typ, payload); werr != nil {
		gen := c.gen
		gen.die(werr)
		if !c.recover(gen, "send failed") {
			if ferr := c.firstErr(); ferr != nil {
				return true, ferr
			}
			return true, nil // terminal with a verdict, not an error
		}
		// recover retransmitted the windowed copy on the new connection.
	}
	return c.stopped.Load(), c.firstErr()
}

// SendPacket streams one batch-packed packet (its used bytes only) and
// releases the packet's pooled buffer — the client-side mirror of the
// in-process transfer where the unpacker's arena copy frees the packet.
// stop=true means a verdict arrived and production should cease.
func (c *Client) SendPacket(pkt batch.Packet) (stop bool, err error) {
	defer pkt.Release()
	return c.sendData(FramePacket, pkt.Buf[:pkt.Used])
}

// SendItems streams bare wire items (the per-event baseline). The encode
// scratch is pooled, so steady-state sends allocate nothing.
func (c *Client) SendItems(items []wire.Item) (stop bool, err error) {
	// ItemsSize pre-sizes the scratch exactly, so AppendItems stays within
	// capacity and enc aliases scratch's backing array.
	scratch := event.GetBuf(ItemsSize(items))
	enc, err := AppendItems(scratch, items)
	if err != nil {
		event.PutBuf(scratch)
		return true, err
	}
	stop, err = c.sendData(FrameItems, enc)
	event.PutBuf(scratch)
	return stop, err
}

// Finish ends the stream: sends FrameEnd, waits for the server's Done, and
// returns the final verdict (which carries any mismatch diagnosis). If the
// connection breaks (or silently stalls) while waiting, resume-enabled
// sessions recover and retransmit; the server replays a lost Done from its
// parked state.
func (c *Client) Finish() (Verdict, error) {
	c.endSent = true
	if err := c.gen.conn.WriteFrame(FrameEnd, nil); err != nil {
		gen := c.gen
		gen.die(err)
		if !c.recover(gen, "end send failed") {
			if v, ok := c.finalVerdict(); ok {
				return v, nil
			}
			if rerr := c.firstErr(); rerr != nil {
				return Verdict{}, rerr
			}
			return Verdict{}, fmt.Errorf("transport: end send: %w", err)
		}
	}
	for {
		gen := c.gen
		var stallC <-chan time.Time
		var stallT *time.Timer
		if c.cfg.StallTimeout > 0 {
			stallT = time.NewTimer(c.cfg.StallTimeout)
			stallC = stallT.C
		}
		ok := false
		select {
		case <-c.done:
			ok = true
		case <-gen.dead:
			c.recover(gen, "connection lost awaiting verdict")
		case <-stallC:
			c.recover(gen, "silent stall awaiting verdict")
		}
		if stallT != nil {
			stallT.Stop()
		}
		if !ok {
			select {
			case <-c.done:
				ok = true
			default:
				continue
			}
		}
		if v, got := c.finalVerdict(); got {
			return v, nil
		}
		if rerr := c.firstErr(); rerr != nil {
			return Verdict{}, rerr
		}
		return Verdict{}, errors.New("transport: session closed without a Done frame")
	}
}

// finalVerdict snapshots the Done payload, if it arrived.
func (c *Client) finalVerdict() (Verdict, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.final != nil {
		return *c.final, true
	}
	return Verdict{}, false
}

// Verdict returns the early mismatch verdict, if one has arrived.
func (c *Client) Verdict() *Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verdict
}

// Mismatch reconstructs the checker diagnosis from the most recent verdict.
func (c *Client) Mismatch() *checker.Mismatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.final != nil && c.final.Mismatch != nil:
		return c.final.Mismatch.ToChecker()
	case c.verdict != nil:
		return c.verdict.Mismatch.ToChecker()
	}
	return nil
}

// Close tears the connection down and drains the replay window back to the
// buffer pool; safe after Finish. Like the send methods, Close belongs to
// the producer goroutine.
func (c *Client) Close() error {
	err := c.gen.conn.Close()
	<-c.gen.exited
	c.releasePending()
	c.terminal()
	return err
}
