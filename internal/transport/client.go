package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/checker"
	"repro/internal/event"
	"repro/internal/wire"
)

// ClientConfig tunes the DUT-side endpoint.
type ClientConfig struct {
	// DialTimeout bounds the connect + handshake (0 = 10s).
	DialTimeout time.Duration
	// WriteTimeout bounds each data-frame flush (0 = DefaultWriteTimeout).
	WriteTimeout time.Duration
}

// Client streams one DUT session to a difftestd server: data frames out
// under the token window, credits and verdicts in on a reader goroutine.
// Send methods are not goroutine-safe (one producer); the reader goroutine
// is internal.
type Client struct {
	conn    *Conn
	welcome Welcome

	// tokens holds the credit window: one buffered slot per granted token.
	// Send takes a token per data frame; the reader refills on Credit.
	tokens chan struct{}
	// stalls counts sends that found the window empty — the client-side
	// backpressure measurement (paper §4.4's token exhaustion).
	stalls atomic.Uint64

	stopped atomic.Bool // a verdict or error arrived; stop producing

	mu      sync.Mutex
	verdict *Verdict // mismatch verdict (FrameVerdict), if any
	final   *Verdict // FrameDone payload
	readErr error

	done chan struct{} // closed when the reader goroutine exits
}

// Dial connects to a difftestd server (spec per SplitAddr), performs the
// handshake, and starts the credit/verdict reader.
func Dial(spec string, hello Hello, cfg ClientConfig) (*Client, error) {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 10 * time.Second
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = DefaultWriteTimeout
	}
	network, addr := SplitAddr(spec)
	nc, err := net.DialTimeout(network, addr, cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", spec, err)
	}
	conn := NewConn(nc)
	conn.WriteTimeout = cfg.WriteTimeout
	conn.ReadTimeout = cfg.DialTimeout

	hello.Proto = ProtoVersion
	hello.WireDigest = event.FormatDigest()
	if err := conn.WriteFrame(FrameHello, encodeJSON(&hello)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	h, payload, err := conn.ReadFrame()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake read: %w", err)
	}
	defer releaseBuf(payload)
	switch h.Type {
	case FrameWelcome:
	case FrameError:
		var ei ErrorInfo
		if jerr := decodeJSON(h.Type, payload, &ei); jerr != nil {
			conn.Close()
			return nil, jerr
		}
		conn.Close()
		return nil, &ei
	default:
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: unexpected frame type %d", h.Type)
	}
	var w Welcome
	if err := decodeJSON(h.Type, payload, &w); err != nil {
		conn.Close()
		return nil, err
	}
	if w.Tokens <= 0 {
		conn.Close()
		return nil, fmt.Errorf("transport: server granted a %d-token window", w.Tokens)
	}

	c := &Client{
		conn:    conn,
		welcome: w,
		tokens:  make(chan struct{}, w.Tokens),
		done:    make(chan struct{}),
	}
	for i := 0; i < w.Tokens; i++ {
		c.tokens <- struct{}{}
	}
	conn.ReadTimeout = 0 // the reader blocks until the server speaks or EOF
	go c.readLoop()
	return c, nil
}

// Session reports the server-assigned session id.
func (c *Client) Session() uint64 { return c.welcome.Session }

// Window reports the granted token window.
func (c *Client) Window() int { return c.welcome.Tokens }

// Stalls reports how many sends found the token window exhausted.
func (c *Client) Stalls() uint64 { return c.stalls.Load() }

// readLoop drains server frames: credits refill the window, a verdict stops
// production, Done finishes the session.
func (c *Client) readLoop() {
	defer close(c.done)
	for {
		h, payload, err := c.conn.ReadFrame()
		if err != nil {
			c.fail(fmt.Errorf("transport: server connection: %w", err))
			return
		}
		switch h.Type {
		case FrameCredit:
			var cr Credit
			err := decodeJSON(h.Type, payload, &cr)
			releaseBuf(payload)
			if err != nil {
				c.fail(err)
				return
			}
			for i := 0; i < cr.Tokens; i++ {
				select {
				case c.tokens <- struct{}{}:
				default: // over-credit; the window cap is authoritative
				}
			}
		case FrameVerdict:
			var v Verdict
			err := decodeJSON(h.Type, payload, &v)
			releaseBuf(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			c.verdict = &v
			c.mu.Unlock()
			c.stopped.Store(true)
		case FrameDone:
			var v Verdict
			err := decodeJSON(h.Type, payload, &v)
			releaseBuf(payload)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			c.final = &v
			c.mu.Unlock()
			c.stopped.Store(true)
			return
		case FrameError:
			var ei ErrorInfo
			err := decodeJSON(h.Type, payload, &ei)
			releaseBuf(payload)
			if err != nil {
				c.fail(err)
			} else {
				c.fail(&ei)
			}
			return
		default:
			releaseBuf(payload)
			c.fail(fmt.Errorf("transport: unexpected server frame type %d", h.Type))
			return
		}
	}
}

// fail records the first reader error and unblocks producers.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	c.mu.Unlock()
	c.stopped.Store(true)
}

func (c *Client) firstErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.readErr
}

// take acquires one window token, counting a stall when the window is dry —
// this is where networked backpressure is measured. Returns false when the
// session stopped (verdict or error) instead of blocking forever.
func (c *Client) take() bool {
	select {
	case <-c.tokens:
		return true
	default:
	}
	c.stalls.Add(1)
	// Blocking here cannot deadlock: every in-flight frame's token comes
	// back as a credit once the server consumes it, and a dead connection
	// ends the reader, which closes done.
	select {
	case <-c.tokens:
		return true
	case <-c.done:
		return false
	}
}

// SendPacket streams one batch-packed packet (its used bytes only) and
// releases the packet's pooled buffer — the client-side mirror of the
// in-process transfer where the unpacker's arena copy frees the packet.
// stop=true means a verdict arrived and production should cease.
func (c *Client) SendPacket(pkt batch.Packet) (stop bool, err error) {
	defer pkt.Release()
	if c.stopped.Load() || !c.take() {
		return true, c.firstErr()
	}
	if err := c.conn.WriteFrame(FramePacket, pkt.Buf[:pkt.Used]); err != nil {
		return true, fmt.Errorf("transport: packet send: %w", err)
	}
	return c.stopped.Load(), c.firstErr()
}

// SendItems streams bare wire items (the per-event baseline). The encode
// scratch is pooled, so steady-state sends allocate nothing.
func (c *Client) SendItems(items []wire.Item) (stop bool, err error) {
	if c.stopped.Load() || !c.take() {
		return true, c.firstErr()
	}
	// ItemsSize pre-sizes the scratch exactly, so AppendItems stays within
	// capacity and enc aliases scratch's backing array.
	scratch := event.GetBuf(ItemsSize(items))
	enc, err := AppendItems(scratch, items)
	if err != nil {
		event.PutBuf(scratch)
		return true, err
	}
	err = c.conn.WriteFrame(FrameItems, enc)
	event.PutBuf(scratch)
	if err != nil {
		return true, fmt.Errorf("transport: items send: %w", err)
	}
	return c.stopped.Load(), c.firstErr()
}

// Finish ends the stream: sends FrameEnd, waits for the server's Done, and
// returns the final verdict (which carries any mismatch diagnosis).
func (c *Client) Finish() (Verdict, error) {
	if err := c.conn.WriteFrame(FrameEnd, nil); err != nil {
		// The server may already have closed after an error frame; surface
		// the recorded reader error first.
		<-c.done
		if rerr := c.firstErr(); rerr != nil {
			return Verdict{}, rerr
		}
		return Verdict{}, fmt.Errorf("transport: end send: %w", err)
	}
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.final != nil {
		return *c.final, nil
	}
	if c.readErr != nil {
		return Verdict{}, c.readErr
	}
	return Verdict{}, errors.New("transport: session closed without a Done frame")
}

// Verdict returns the early mismatch verdict, if one has arrived.
func (c *Client) Verdict() *Verdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.verdict
}

// Mismatch reconstructs the checker diagnosis from the most recent verdict.
func (c *Client) Mismatch() *checker.Mismatch {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.final != nil && c.final.Mismatch != nil:
		return c.final.Mismatch.ToChecker()
	case c.verdict != nil:
		return c.verdict.Mismatch.ToChecker()
	}
	return nil
}

// Close tears the connection down; safe after Finish.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.done
	return err
}
