package transport

import (
	"net"
	"path/filepath"
	"testing"

	"repro/internal/event"
)

// BenchmarkFrameRoundTrip measures one full frame round trip — encode,
// checksum, write, read, checksum-verify, echo back — over an in-memory
// connection pair. This is the per-frame floor of every remote session:
// everything difftestd adds (decode, check, credit) sits on top of it.
// benchjson's transport area tracks it in BENCH_transport.json.
func BenchmarkFrameRoundTrip(b *testing.B) {
	cp, sp := net.Pipe()
	client, server := NewConn(cp), NewConn(sp)
	defer client.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		for {
			h, buf, err := server.ReadFrame()
			if err != nil {
				return // client closed after the timed loop
			}
			err = server.WriteFrame(h.Type, buf)
			if buf != nil {
				event.PutBuf(buf)
			}
			if err != nil {
				return
			}
		}
	}()

	payload := make([]byte, 4096) // Palladium's PacketBytes
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(2 * (FrameHeaderSize + len(payload)))) // both directions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteFrame(FramePacket, payload); err != nil {
			b.Fatal(err)
		}
		_, buf, err := client.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if len(buf) != len(payload) {
			b.Fatalf("echo returned %d bytes, want %d", len(buf), len(payload))
		}
		event.PutBuf(buf)
	}
	b.StopTimer()
	client.Close()
	<-done
}

// BenchmarkUnixSocketFrameRoundTrip is BenchmarkFrameRoundTrip over a real
// unix-domain socket instead of net.Pipe: the same echo protocol, but every
// frame pays the kernel's socket send/receive path. It exists as the baseline
// the shmring transport is measured against — benchjson's shm area puts this
// and BenchmarkShmFrameRoundTrip in the same BENCH_shm.json file.
func BenchmarkUnixSocketFrameRoundTrip(b *testing.B) {
	sock := filepath.Join(b.TempDir(), "bench.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := l.Accept()
		if err != nil {
			return
		}
		server := NewConn(nc)
		defer server.Close()
		for {
			h, buf, err := server.ReadFrame()
			if err != nil {
				return
			}
			err = server.WriteFrame(h.Type, buf)
			if buf != nil {
				event.PutBuf(buf)
			}
			if err != nil {
				return
			}
		}
	}()

	nc, err := net.Dial("unix", sock)
	if err != nil {
		b.Fatal(err)
	}
	client := NewConn(nc)
	defer client.Close()

	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(2 * (FrameHeaderSize + len(payload))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteFrame(FramePacket, payload); err != nil {
			b.Fatal(err)
		}
		_, buf, err := client.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if len(buf) != len(payload) {
			b.Fatalf("echo returned %d bytes, want %d", len(buf), len(payload))
		}
		event.PutBuf(buf)
	}
	b.StopTimer()
	client.Close()
	<-done
}

// BenchmarkFrameHeaderSum isolates the CRC32-C checksum over a header plus a
// packet-sized payload — the only per-byte work the framing layer adds.
func BenchmarkFrameHeaderSum(b *testing.B) {
	h := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: 4096, Seq: 42}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b.SetBytes(int64(frameCheckOffset + len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	var sum uint32
	for i := 0; i < b.N; i++ {
		sum = h.Sum(payload)
	}
	b.StopTimer()
	if sum == 0 {
		b.Log("checksum happened to be zero") // keep sum live
	}
}
