package transport

import (
	"encoding/binary"
	"fmt"

	"repro/internal/event"
	"repro/internal/wire"
)

// FrameItems payload layout: a 2-byte item count, then per item a 5-byte
// prelude (type, core, slot, 2-byte payload length) followed by the payload
// bytes. The per-event baseline config sends one item per frame, but the
// encoding supports batches so flushed tails travel in one frame.
const (
	itemsCountSize   = 2
	itemPreludeSize  = 5
	maxItemsPerFrame = 1 << 15
)

// AppendItems appends the FrameItems encoding of items to dst and returns
// the extended slice. Pair with a pooled buffer (event.GetBuf) on the send
// path so steady-state encoding allocates nothing.
func AppendItems(dst []byte, items []wire.Item) ([]byte, error) {
	if len(items) > maxItemsPerFrame {
		return dst, fmt.Errorf("transport: %d items exceed the per-frame limit %d", len(items), maxItemsPerFrame)
	}
	var b [itemPreludeSize]byte
	binary.LittleEndian.PutUint16(b[0:], uint16(len(items)))
	dst = append(dst, b[:itemsCountSize]...)
	for _, it := range items {
		if len(it.Payload) > 0xffff {
			return dst, fmt.Errorf("transport: item payload %dB exceeds the 64KiB frame item limit", len(it.Payload))
		}
		b[0], b[1], b[2] = it.Type, it.Core, it.Slot
		binary.LittleEndian.PutUint16(b[3:], uint16(len(it.Payload)))
		dst = append(dst, b[:]...)
		dst = append(dst, it.Payload...)
	}
	return dst, nil
}

// ItemsSize returns the encoded FrameItems payload size for items.
func ItemsSize(items []wire.Item) int {
	n := itemsCountSize
	for _, it := range items {
		n += itemPreludeSize + len(it.Payload)
	}
	return n
}

// DecodeItems parses a FrameItems payload. Item payloads are copied out of
// buf into one arena allocation, so the caller may release buf back to the
// buffer pool as soon as DecodeItems returns — the same contract as
// batch.Unpacker.AddPacket.
func DecodeItems(buf []byte) ([]wire.Item, error) {
	if len(buf) < itemsCountSize {
		return nil, fmt.Errorf("transport: items frame shorter than its count field")
	}
	count := int(binary.LittleEndian.Uint16(buf[0:]))
	pos := itemsCountSize
	if need := count * itemPreludeSize; len(buf)-pos < need {
		return nil, fmt.Errorf("transport: items frame truncated (%d items announced, %d bytes left)", count, len(buf)-pos)
	}
	arena := make([]byte, 0, len(buf)-pos-count*itemPreludeSize)
	items := make([]wire.Item, 0, count)
	for i := 0; i < count; i++ {
		if len(buf)-pos < itemPreludeSize {
			return nil, fmt.Errorf("transport: item %d/%d prelude overruns frame", i, count)
		}
		typ, core, slot := buf[pos], buf[pos+1], buf[pos+2]
		n := int(binary.LittleEndian.Uint16(buf[pos+3:]))
		pos += itemPreludeSize
		if len(buf)-pos < n {
			if k, ok := (wire.Item{Type: typ}).Kind(); ok {
				return nil, fmt.Errorf("transport: item %d/%d: %w", i, count,
					&event.DecodeError{Kind: k, Len: len(buf) - pos, Err: event.ErrShortPayload})
			}
			return nil, fmt.Errorf("transport: item %d/%d payload overruns frame", i, count)
		}
		start := len(arena)
		arena = append(arena, buf[pos:pos+n]...)
		items = append(items, wire.Item{
			Type: typ, Core: core, Slot: slot,
			Payload: arena[start:len(arena):len(arena)],
		})
		pos += n
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("transport: %d trailing bytes after %d items", len(buf)-pos, count)
	}
	return items, nil
}
