package transport

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// TestServerStatsPoll: a dedicated connection whose first frame is
// FrameStats gets a health snapshot per poll and stays open across polls —
// the contract a fleet router's placement loop depends on.
func TestServerStatsPoll(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:  stubSessions(func() *stubChecker { return &stubChecker{} }),
		Window:      4,
		MaxSessions: 8,
	})

	// One live session so the poll sees occupancy.
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{1}}}); err != nil {
		t.Fatal(err)
	}
	if cl.Migrations() != 0 {
		t.Fatalf("bare-difftestd session reports %d migrations", cl.Migrations())
	}

	conn, err := DialFrame(spec, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	readStats := func() StatsInfo {
		t.Helper()
		fh, payload, err := conn.ReadFrame()
		if err != nil || fh.Type != FrameStats {
			t.Fatalf("stats reply: type=%d err=%v", fh.Type, err)
		}
		var si StatsInfo
		if err := decodeJSON(fh.Type, payload, &si); err != nil {
			t.Fatal(err)
		}
		releaseBuf(payload)
		return si
	}

	if err := conn.WriteFrame(FrameStats, nil); err != nil {
		t.Fatal(err)
	}
	si := readStats()
	if si.Active != 1 || si.Window != 4 || si.Capacity != 8 {
		t.Fatalf("first poll %+v, want Active=1 Window=4 Capacity=8", si)
	}
	if occ := si.Occupancy(); occ != 0.125 {
		t.Fatalf("occupancy %v, want 1/8", occ)
	}

	// Same connection, second poll: the loop holds.
	if err := conn.WriteFrame(FrameStats, nil); err != nil {
		t.Fatal(err)
	}
	if si := readStats(); si.Window != 4 {
		t.Fatalf("second poll %+v", si)
	}

	// A non-poll frame on a stats connection is a protocol error.
	if err := conn.WriteFrame(FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := conn.ReadFrame()
	if err != nil || fh.Type != FrameErrorInfo {
		t.Fatalf("after bad poll frame: type=%d err=%v", fh.Type, err)
	}
	var ei ErrorInfo
	if err := decodeJSON(fh.Type, payload, &ei); err != nil {
		t.Fatal(err)
	}
	releaseBuf(payload)
	if ei.Code != "decode" {
		t.Fatalf("bad poll refused with %q, want decode", ei.Code)
	}

	if got := srv.StatsInfo(); got.Active != 1 || got.Served != 0 {
		t.Fatalf("server snapshot %+v mid-session", got)
	}
}

// TestStatsOccupancyUnlimited: without a session cap there is no load
// fraction to report.
func TestStatsOccupancyUnlimited(t *testing.T) {
	si := StatsInfo{Active: 3, Capacity: 0}
	if occ := si.Occupancy(); occ != -1 {
		t.Fatalf("unlimited-capacity occupancy %v, want -1", occ)
	}
}
