package transport

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"

	"repro/internal/event"
	"repro/internal/wire"
)

func TestFrameHeaderRoundTrip(t *testing.T) {
	h := FrameHeader{Magic: FrameMagic, Type: FramePacket, Flags: 0x5a, Length: 4096, Seq: 1<<40 + 17}
	enc := h.AppendTo(nil)
	if len(enc) != FrameHeaderSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), FrameHeaderSize)
	}
	var got FrameHeader
	n, err := got.DecodeFrom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != FrameHeaderSize {
		t.Fatalf("consumed %d bytes, want %d", n, FrameHeaderSize)
	}
	if got != h {
		t.Fatalf("round trip changed the header:\n in:  %+v\n out: %+v", h, got)
	}
}

func TestFrameHeaderDecodeErrors(t *testing.T) {
	good := FrameHeader{Magic: FrameMagic, Type: FrameHello, Length: 8, Seq: 0}
	enc := good.AppendTo(nil)

	var h FrameHeader
	if _, err := h.DecodeFrom(enc[:FrameHeaderSize-1]); !errors.Is(err, ErrShortHeader) {
		t.Errorf("truncated header: got %v, want ErrShortHeader", err)
	}

	corrupt := append([]byte(nil), enc...)
	corrupt[0] ^= 0xff
	if _, err := h.DecodeFrom(corrupt); !errors.Is(err, ErrBadMagic) {
		t.Errorf("corrupt magic: got %v, want ErrBadMagic", err)
	}

	huge := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: MaxFrameBytes + 1}
	if _, err := h.DecodeFrom(huge.AppendTo(nil)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized length: got %v, want ErrFrameTooLarge", err)
	}
}

func TestItemsRoundTrip(t *testing.T) {
	items := []wire.Item{
		{Type: 0, Core: 0, Slot: 1, Payload: []byte{1, 2, 3, 4}},
		{Type: 3, Core: 1, Slot: 0, Payload: nil},
		{Type: wire.TypeNDEBase, Core: 2, Slot: 7, Payload: bytes.Repeat([]byte{0xab}, 300)},
	}
	enc, err := AppendItems(nil, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != ItemsSize(items) {
		t.Fatalf("encoded %d bytes, ItemsSize says %d", len(enc), ItemsSize(items))
	}
	got, err := DecodeItems(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		in, out := items[i], got[i]
		if in.Type != out.Type || in.Core != out.Core || in.Slot != out.Slot ||
			!bytes.Equal(in.Payload, out.Payload) {
			t.Errorf("item %d changed: in %+v out %+v", i, in, out)
		}
	}
}

func TestItemsDecodeErrors(t *testing.T) {
	items := []wire.Item{{Type: 0, Core: 0, Slot: 1, Payload: []byte{1, 2, 3, 4}}}
	enc, err := AppendItems(nil, items)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeItems(enc[:1]); err == nil {
		t.Error("short count field: decode succeeded")
	}
	// Truncating inside the payload of an item with a known kind must wrap
	// the codec's typed decode error.
	var de *event.DecodeError
	if _, err := DecodeItems(enc[:len(enc)-2]); !errors.As(err, &de) {
		t.Errorf("truncated payload: got %v, want *event.DecodeError", err)
	}
	if _, err := DecodeItems(append(enc, 0xee)); err == nil {
		t.Error("trailing bytes: decode succeeded")
	}
}

// connPair builds a framed connection over an in-memory pipe. The reader side
// runs ReadFrame on the caller's goroutine; writes happen on a helper one
// (net.Pipe is synchronous).
func connPair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return NewConn(a), NewConn(b)
}

func TestConnFrameRoundTrip(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	cw, cr := connPair(t)
	payload := bytes.Repeat([]byte{0x42}, 1000)
	werr := make(chan error, 1)
	go func() { werr <- cw.WriteFrame(FramePacket, payload) }()

	h, buf, err := cr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != FramePacket || int(h.Length) != len(payload) || h.Seq != 0 {
		t.Fatalf("header %+v does not describe the sent frame", h)
	}
	if !bytes.Equal(buf, payload) {
		t.Fatal("payload changed in flight")
	}
	event.PutBuf(buf)
	if err := <-werr; err != nil {
		t.Fatal(err)
	}

	// Zero-length frames return a nil payload needing no release.
	go func() { werr <- cw.WriteFrame(FrameEnd, nil) }()
	h, buf, err = cr.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != FrameEnd || buf != nil || h.Seq != 1 {
		t.Fatalf("empty frame: header %+v payload %v", h, buf)
	}
	if err := <-werr; err != nil {
		t.Fatal(err)
	}

	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

func TestConnCorruptHeader(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	cr := NewConn(b)

	bad := FrameHeader{Magic: 0xdeadbeef, Type: FramePacket, Length: 4}
	go func() { a.Write(bad.AppendTo(nil)) }()
	if _, _, err := cr.ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("corrupt magic on the wire: got %v, want ErrBadMagic", err)
	}
}

func TestConnTruncatedHeader(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { b.Close() })
	cr := NewConn(b)

	good := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: 4}
	go func() {
		a.Write(good.AppendTo(nil)[:FrameHeaderSize/2])
		a.Close()
	}()
	if _, _, err := cr.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestConnTruncatedPayload(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	a, b := net.Pipe()
	t.Cleanup(func() { b.Close() })
	cr := NewConn(b)

	hdr := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: 100}
	go func() {
		a.Write(hdr.AppendTo(nil))
		a.Write([]byte{1, 2, 3}) // 97 bytes short
		a.Close()
	}()
	if _, _, err := cr.ReadFrame(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated payload: got %v, want io.ErrUnexpectedEOF", err)
	}
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pooled buffer leaked on a failed read: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

func TestConnSequenceJump(t *testing.T) {
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	cr := NewConn(b)

	skipped := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: 0, Seq: 5}
	go func() { a.Write(skipped.AppendTo(nil)) }()
	if _, _, err := cr.ReadFrame(); err == nil {
		t.Fatal("sequence jump accepted")
	}
}

// FuzzFrameRoundTrip sends an arbitrary frame through a real framed
// connection and asserts it arrives intact with the buffer pool balanced,
// and that arbitrary bytes fed to the header decoder never panic.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(uint8(FramePacket), uint8(0), uint64(0), []byte("payload"))
	f.Add(uint8(FrameItems), uint8(1), uint64(9), []byte{})
	f.Add(uint8(0xff), uint8(0xff), uint64(1<<63), bytes.Repeat([]byte{0xaa}, 4096))
	f.Fuzz(func(t *testing.T, typ, flags uint8, seq uint64, payload []byte) {
		// Arbitrary bytes must never panic the header decoder.
		var junk FrameHeader
		junk.DecodeFrom(payload)

		// Header codec round trip for arbitrary field values.
		h := FrameHeader{Magic: FrameMagic, Type: typ, Flags: flags,
			Length: uint32(len(payload)), Seq: seq}
		var got FrameHeader
		if _, err := got.DecodeFrom(h.AppendTo(nil)); err != nil || got != h {
			t.Fatalf("header round trip: %+v -> %+v (%v)", h, got, err)
		}

		// Full wire round trip through a framed connection pair.
		gets0, puts0 := event.PoolStats()
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		cw, cr := NewConn(a), NewConn(b)
		werr := make(chan error, 1)
		go func() { werr <- cw.WriteFrame(typ, payload) }()
		rh, buf, err := cr.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if rh.Type != typ || int(rh.Length) != len(payload) {
			t.Fatalf("header %+v does not describe the %d-byte %d frame", rh, len(payload), typ)
		}
		if len(payload) == 0 {
			if buf != nil {
				t.Fatal("zero-length frame returned a buffer")
			}
		} else {
			if !bytes.Equal(buf, payload) {
				t.Fatal("payload changed in flight")
			}
			event.PutBuf(buf)
		}
		if err := <-werr; err != nil {
			t.Fatal(err)
		}
		gets1, puts1 := event.PoolStats()
		if gets1-gets0 != puts1-puts0 {
			t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
		}
	})
}
