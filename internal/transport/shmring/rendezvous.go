package shmring

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
)

// segSuffix names rendezvous segment files; anything else in the directory
// is ignored.
const segSuffix = ".dth1seg"

// acceptPoll is how often a listener rescans its rendezvous directory and a
// dialer rechecks the state word. Connection setup is once per session, so a
// short sleep beats burning a core.
const acceptPoll = 2 * time.Millisecond

// DefaultDialTimeout bounds a dial with no explicit timeout.
const DefaultDialTimeout = 10 * time.Second

// dialSeq distinguishes segment files from one process dialing the same
// directory concurrently.
var dialSeq atomic.Uint64

// parseAddr splits an shm address into its rendezvous directory and options:
// "DIR" or "DIR?ring=BYTES".
func parseAddr(addr string) (dir string, ringBytes int, err error) {
	dir, opts, _ := strings.Cut(addr, "?")
	if dir == "" {
		return "", 0, errors.New("shmring: empty rendezvous directory")
	}
	ringBytes = DefaultRingBytes
	if opts == "" {
		return dir, ringBytes, nil
	}
	for _, kv := range strings.Split(opts, "&") {
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "ring":
			n, perr := strconv.Atoi(v)
			if perr != nil || !validRingBytes(n) {
				return "", 0, fmt.Errorf(
					"shmring: ring option %q must be a power of two in [%d, %d]", v, MinRingBytes, MaxRingBytes)
			}
			ringBytes = n
		default:
			return "", 0, fmt.Errorf("shmring: unknown address option %q", k)
		}
	}
	return dir, ringBytes, nil
}

// dialShm creates a segment file in the rendezvous directory, marks it
// ready, and waits for a listener to claim it. Registered as the "shm"
// scheme's Dial.
func dialShm(addr string, timeout time.Duration) (transport.FrameTransport, error) {
	dir, ringBytes, err := parseAddr(addr)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shmring: rendezvous dir: %w", err)
	}
	name := fmt.Sprintf("c%d-%d%s", os.Getpid(), dialSeq.Add(1), segSuffix)
	path := filepath.Join(dir, name)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("shmring: create segment: %w", err)
	}
	size := segmentSize(ringBytes)
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("shmring: size segment: %w", err)
	}
	mem, unmap, err := mmapFile(f, size)
	f.Close() // the mapping outlives the descriptor
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	seg := initSegment(mem, ringBytes)
	seg.unmap = unmap
	seg.refs.Store(1)
	seg.state().Store(stateReady)

	deadline := time.Now().Add(timeout)
	for seg.state().Load() != stateAccepted {
		if time.Now().After(deadline) {
			os.Remove(path)
			unmap()
			return nil, fmt.Errorf("shmring: no listener claimed %s within %v", path, timeout)
		}
		time.Sleep(acceptPoll)
	}
	return newConn(seg, roleClient, "shm://"+addr), nil
}

// Listener accepts shm connections by claiming ready segment files in a
// rendezvous directory.
type Listener struct {
	dir       string
	addr      string
	done      chan struct{}
	closeOnce sync.Once
}

var _ transport.FrameListener = (*Listener)(nil)

// listenShm opens a rendezvous directory. Registered as the "shm" scheme's
// Listen.
func listenShm(addr string) (transport.FrameListener, error) {
	dir, _, err := parseAddr(addr) // a listener takes each dialer's ring size
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shmring: rendezvous dir: %w", err)
	}
	if _, _, merr := mmapFile(nil, 0); errors.Is(merr, errMmapUnsupported) {
		return nil, merr
	}
	return &Listener{dir: dir, addr: "shm://" + addr, done: make(chan struct{})}, nil
}

// Addr reports the rendezvous spec.
func (l *Listener) Addr() string { return l.addr }

// Close stops the accept loop; blocked AcceptFrame calls return an error.
func (l *Listener) Close() error {
	l.closeOnce.Do(func() { close(l.done) })
	return nil
}

// AcceptFrame claims the next ready segment: map it, CAS the state word so
// exactly one listener wins it, and unlink the file — both sides hold
// mappings, so nothing remains on disk for the connection's lifetime.
func (l *Listener) AcceptFrame() (transport.FrameTransport, error) {
	for {
		select {
		case <-l.done:
			return nil, errors.New("shmring: listener closed")
		default:
		}
		entries, err := os.ReadDir(l.dir)
		if err != nil {
			return nil, fmt.Errorf("shmring: rendezvous dir: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), segSuffix) {
				continue
			}
			if conn := l.claim(filepath.Join(l.dir, e.Name())); conn != nil {
				return conn, nil
			}
		}
		select {
		case <-l.done:
			return nil, errors.New("shmring: listener closed")
		case <-time.After(acceptPoll):
		}
	}
}

// claim tries to win one candidate segment file; nil means it was invalid,
// not ready, or another listener got there first.
func (l *Listener) claim(path string) *Conn {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() < int64(headerPages*pageSize) || fi.Size() > int64(segmentSize(MaxRingBytes)) {
		f.Close()
		return nil
	}
	mem, unmap, err := mmapFile(f, int(fi.Size()))
	f.Close()
	if err != nil {
		return nil
	}
	seg, err := openSegment(mem)
	if err != nil || !seg.state().CompareAndSwap(stateReady, stateAccepted) {
		unmap()
		return nil
	}
	seg.unmap = unmap
	seg.refs.Store(1)
	os.Remove(path)
	return newConn(seg, roleServer, l.addr)
}
