package shmring

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/event"
	"repro/internal/transport"
)

// Connection-level errors.
var (
	// ErrPeerClosed marks a write against a ring whose consumer has closed.
	ErrPeerClosed = errors.New("shmring: peer closed")
	// ErrClosed marks an operation on a locally closed connection.
	ErrClosed = errors.New("shmring: use of closed connection")
	// ErrRingCorrupt marks ring contents that violate the frame protocol —
	// the shared mapping was scribbled on, or the peer is broken.
	ErrRingCorrupt = errors.New("shmring: ring corrupt")
)

// timeoutError implements net.Error's Timeout() so the server's idle-reap
// and the client's stall detection treat ring deadline expiry exactly like a
// socket deadline expiry.
type timeoutError struct{ op string }

func (e *timeoutError) Error() string   { return "shmring: " + e.op + " deadline exceeded" }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// Spin-then-park tuning — one knob, three numbers. A blocked ring operation
// first burns spinYields scheduler yields (the common case: the peer refills
// or drains the ring within a scheduling quantum, so the wait never leaves
// the spin phase), then sleeps, doubling from parkSleepMin up to the
// parkSleepMax ceiling so an idle connection costs no CPU. The three move
// together: a wider spin burst buys latency with busy CPU, a higher sleep
// ceiling buys idle power with wakeup latency, and a lower parkSleepMin just
// shifts where the doubling ladder starts. LinkStats counts how often each
// side outlasts the spin phase — if WriterParks/ReaderParks dominate frame
// counts in a steady-state run, the burst is too short for that workload;
// re-derive against BenchmarkShmFrameRoundTrip before touching any of them.
const (
	spinYields   = 128
	parkSleepMin = 5 * time.Microsecond
	parkSleepMax = 200 * time.Microsecond
)

// parker is the per-operation ladder state: zero value = start of the spin
// phase. ReadFrame/ReserveFrame thread one through their retry loop and
// reset it on progress, so every fresh wait restarts with yields, not
// sleeps.
type parker struct {
	spin  int
	sleep time.Duration
}

func (p *parker) reset() { p.spin, p.sleep = 0, 0 }

// role distinguishes the two ends of a segment: the dialer produces ring 0
// and consumes ring 1, the accepter the reverse.
type role int

const (
	roleClient role = iota
	roleServer
)

// Conn is one end of a shared-memory ring connection. It implements
// transport.FrameTransport: one producer goroutine and one consumer
// goroutine, exactly like the socket Conn (WriteFrame additionally
// serializes concurrent writers on a mutex; ReserveFrame/CommitFrame are
// single-producer only).
type Conn struct {
	seg    *segment
	wr, rd ring
	remote string

	writeMu  sync.Mutex
	writeSeq uint64
	// staged* hold an open ReserveFrame reservation until CommitFrame.
	stagedPos  uint64 // payload start position in wr.data
	stagedPad  uint64
	stagedHead uint64
	stagedCap  int
	staged     bool

	readSeq uint64
	// pendingAdvance is the consumed-but-unreleased frame's total ring bytes;
	// ReleasePayload stores the advanced tail, returning the slot to the
	// producer.
	pendingAdvance uint64

	readTimeout  atomic.Int64 // nanoseconds; 0 = no deadline
	writeTimeout atomic.Int64
	interrupted  atomic.Bool // SetDeadlineNow: fail all blocked/future waits
	closed       atomic.Bool

	writerParks atomic.Uint64
	readerParks atomic.Uint64

	closeOnce sync.Once
	closeErr  error
}

var _ transport.FrameTransport = (*Conn)(nil)
var _ transport.StatsReporter = (*Conn)(nil)

// newConn binds one end of a segment.
func newConn(seg *segment, r role, remote string) *Conn {
	c := &Conn{seg: seg, remote: remote}
	if r == roleClient {
		c.wr, c.rd = seg.ring(0), seg.ring(1)
	} else {
		c.wr, c.rd = seg.ring(1), seg.ring(0)
	}
	return c
}

// RingBytes reports the per-direction ring capacity.
func (c *Conn) RingBytes() int { return c.seg.ringBytes }

// MaxPayload reports the largest payload one frame can carry on this ring.
func (c *Conn) MaxPayload() int { return maxPayload(c.seg.ringBytes) }

// RemoteAddr reports the rendezvous address for logging.
func (c *Conn) RemoteAddr() string { return c.remote }

// SetReadTimeout bounds one blocking ReadFrame (0 = no deadline).
func (c *Conn) SetReadTimeout(d time.Duration) { c.readTimeout.Store(int64(d)) }

// SetWriteTimeout bounds one blocking WriteFrame (0 = no deadline).
func (c *Conn) SetWriteTimeout(d time.Duration) { c.writeTimeout.Store(int64(d)) }

// SetDeadlineNow interrupts any blocked read or write; like an expired
// socket deadline, the connection stays interrupted (the server only uses
// this to force-drain before closing).
func (c *Conn) SetDeadlineNow() { c.interrupted.Store(true) }

// LinkStats reports how often each side outlasted its spin phase.
func (c *Conn) LinkStats() transport.LinkStats {
	return transport.LinkStats{
		WriterParks: c.writerParks.Load(),
		ReaderParks: c.readerParks.Load(),
	}
}

// Close closes this end: the peer's reader drains the ring and sees EOF, the
// peer's writer sees ErrPeerClosed, and this end's own blocked operations
// return ErrClosed.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		c.wr.prodClosed.Store(1)
		c.rd.consClosed.Store(1)
		c.closeErr = c.seg.release()
	})
	return c.closeErr
}

// park waits one step of the spin-then-park ladder, failing on deadline
// expiry, interruption, or local close. p carries the ladder state across
// iterations of the caller's retry loop.
func (c *Conn) park(op string, deadline time.Time, parks *atomic.Uint64, p *parker) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if c.interrupted.Load() {
		return &timeoutError{op: op}
	}
	if p.spin < spinYields {
		p.spin++
		runtime.Gosched()
		return nil
	}
	if p.sleep == 0 {
		p.sleep = parkSleepMin
		parks.Add(1)
	} else if p.sleep < parkSleepMax {
		p.sleep *= 2
	}
	if !deadline.IsZero() && time.Now().After(deadline) {
		return &timeoutError{op: op}
	}
	time.Sleep(p.sleep)
	return nil
}

// deadlineFor converts a timeout knob into an absolute deadline (zero time =
// no deadline).
func deadlineFor(d int64) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(d))
}

// WriteFrame sends one frame; the payload is copied into the ring (use
// ReserveFrame/CommitFrame to encode in place instead). Errors are typed
// *transport.FrameError, like the socket path.
func (c *Conn) WriteFrame(typ uint8, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	slot, err := c.ReserveFrame(len(payload))
	if err != nil {
		return err
	}
	copy(slot, payload)
	return c.CommitFrame(typ, len(payload))
}

// AdoptWriteFrame sends one frame whose payload is a pooled buffer
// (event.GetBuf) the caller hands off: the buffer is staged into the ring
// and returned to the pool, win or lose — the send-side mirror of
// ReadFrame's ownership transfer.
func (c *Conn) AdoptWriteFrame(typ uint8, buf []byte) error {
	err := c.WriteFrame(typ, buf)
	event.PutBuf(buf)
	return err
}

// ReserveFrame claims a frame slot with room for up to max payload bytes and
// returns the payload region, aliasing the ring, for the caller to encode
// into. CommitFrame publishes it; until then nothing is visible to the
// consumer. Single-producer only — concurrent writers must use WriteFrame.
func (c *Conn) ReserveFrame(max int) ([]byte, error) {
	if c.staged {
		return nil, frameErr("write", 0, c.writeSeq, errors.New("shmring: ReserveFrame with a reservation already open"))
	}
	if max > maxPayload(c.seg.ringBytes) {
		return nil, frameErr("write", 0, c.writeSeq,
			fmt.Errorf("%w: %d bytes (ring carries at most %d)", transport.ErrFrameTooLarge, max, maxPayload(c.seg.ringBytes)))
	}
	w := &c.wr
	ringBytes := uint64(len(w.data))
	need := uint64(transport.FrameHeaderSize + max)
	deadline := deadlineFor(c.writeTimeout.Load())
	var p parker
	for {
		if c.closed.Load() {
			return nil, frameErr("write", 0, c.writeSeq, ErrClosed)
		}
		if w.consClosed.Load() != 0 {
			return nil, frameErr("write", 0, c.writeSeq, ErrPeerClosed)
		}
		head := w.head.Load()
		pos := head & w.mask
		contig := ringBytes - pos
		var pad uint64
		if need > contig {
			pad = contig
		}
		if space := ringBytes - (head - w.tail.Load()); pad+need > space {
			if err := c.park("write", deadline, &c.writerParks, &p); err != nil {
				return nil, frameErr("write", 0, c.writeSeq, err)
			}
			continue
		}
		if pad > 0 {
			if contig >= 4 {
				binary.LittleEndian.PutUint32(w.data[pos:], padMagic)
			}
			pos = 0
		}
		c.stagedHead, c.stagedPad, c.stagedPos, c.stagedCap, c.staged = head, pad, pos, max, true
		start := pos + transport.FrameHeaderSize
		return w.data[start : start+uint64(max) : start+uint64(max)], nil
	}
}

// CommitFrame seals the open reservation as a typ frame with used payload
// bytes (≤ the reserved max) and publishes it with a single head store.
func (c *Conn) CommitFrame(typ uint8, used int) error {
	if !c.staged {
		return frameErr("write", typ, c.writeSeq, errors.New("shmring: CommitFrame without a reservation"))
	}
	if used < 0 || used > c.stagedCap {
		return frameErr("write", typ, c.writeSeq,
			fmt.Errorf("shmring: commit of %d bytes exceeds the %d-byte reservation", used, c.stagedCap))
	}
	c.staged = false
	w := &c.wr
	pos := c.stagedPos
	h := transport.FrameHeader{Magic: transport.FrameMagic, Type: typ, Length: uint32(used), Seq: c.writeSeq}
	payload := w.data[pos+transport.FrameHeaderSize : pos+transport.FrameHeaderSize+uint64(used)]
	// Encode the header into the ring first, then checksum the encoded bytes
	// in place: ChecksumFrame reads the wire image directly, so the hot path
	// stays allocation-free (FrameHeader.Sum's scratch buffer escapes).
	h.AppendTo(w.data[pos : pos : pos+transport.FrameHeaderSize])
	check := transport.ChecksumFrame(w.data[pos:pos+transport.FrameCheckOffset], payload)
	binary.LittleEndian.PutUint32(w.data[pos+transport.FrameCheckOffset:], check)
	// The release-publish: every byte above must be written before this
	// store; Go atomics' sequential consistency provides the fence.
	w.head.Store(c.stagedHead + c.stagedPad + uint64(transport.FrameHeaderSize) + uint64(used))
	c.writeSeq++
	return nil
}

// ReadFrame reads one frame. The returned payload aliases the ring — zero
// copies — and holds its slot until ReleasePayload (a new ReadFrame call
// auto-releases it, so the at-most-one-outstanding-payload discipline of the
// server and client loops needs no extra bookkeeping). Error contract
// matches the socket path: bare io.EOF only when the peer closed at a frame
// boundary (the only way a ring can end — publishes are whole frames),
// *transport.FrameError otherwise.
func (c *Conn) ReadFrame() (transport.FrameHeader, []byte, error) {
	var h transport.FrameHeader
	if c.pendingAdvance != 0 {
		c.advanceRead()
	}
	r := &c.rd
	ringBytes := uint64(len(r.data))
	deadline := deadlineFor(c.readTimeout.Load())
	var p parker
	for {
		if c.closed.Load() {
			return h, nil, frameErr("read", 0, c.readSeq, ErrClosed)
		}
		tail := r.tail.Load()
		head := r.head.Load()
		if head == tail {
			if r.prodClosed.Load() != 0 {
				// Re-check after observing the close so a frame published
				// just before it is not lost.
				if r.head.Load() == tail {
					return h, nil, io.EOF
				}
				continue
			}
			if err := c.park("read", deadline, &c.readerParks, &p); err != nil {
				return h, nil, frameErr("read", 0, c.readSeq, err)
			}
			continue
		}
		pos := tail & r.mask
		contig := ringBytes - pos
		if contig < transport.FrameHeaderSize ||
			binary.LittleEndian.Uint32(r.data[pos:]) == padMagic {
			// Pad-to-wrap skip; the frame it preceded is at the boundary.
			r.tail.Store(tail + contig)
			p.reset()
			continue
		}
		if _, err := h.DecodeFrom(r.data[pos : pos+transport.FrameHeaderSize]); err != nil {
			return h, nil, frameErr("read", 0, c.readSeq, fmt.Errorf("%w: %v", ErrRingCorrupt, err))
		}
		total := uint64(transport.FrameHeaderSize) + uint64(h.Length)
		if total > head-tail || total > contig {
			return h, nil, frameErr("read", h.Type, h.Seq, fmt.Errorf(
				"%w: header announces %d payload bytes beyond the published frame", ErrRingCorrupt, h.Length))
		}
		start := pos + transport.FrameHeaderSize
		payload := r.data[start : start+uint64(h.Length) : start+uint64(h.Length)]
		// Checksum the raw ring bytes, not a re-encoding of the decoded
		// header, so flips in the reserved bytes are caught too.
		if sum := transport.ChecksumFrame(r.data[pos:pos+transport.FrameCheckOffset], payload); sum != h.Check {
			return h, nil, frameErr("read", h.Type, h.Seq,
				fmt.Errorf("%w: computed %#x, header says %#x", transport.ErrBadChecksum, sum, h.Check))
		}
		if h.Seq != c.readSeq {
			return h, nil, frameErr("read", h.Type, h.Seq,
				fmt.Errorf("%w: from %d to %d", transport.ErrSeqJump, c.readSeq, h.Seq))
		}
		c.readSeq++
		if h.Length == 0 {
			r.tail.Store(tail + total)
			return h, nil, nil
		}
		c.pendingAdvance = total
		return h, payload, nil
	}
}

// ReleasePayload returns a ReadFrame payload to its owner. A ring-aliasing
// payload releases its slot by advancing tail; anything else (a pooled
// buffer a caller routed here by mistake, or from a different transport
// behind the same seam) goes back to the event pool.
func (c *Conn) ReleasePayload(buf []byte) {
	if buf == nil {
		return
	}
	if c.owns(buf) {
		c.advanceRead()
		return
	}
	event.PutBuf(buf)
}

// owns reports whether buf aliases this connection's read ring.
func (c *Conn) owns(buf []byte) bool {
	if cap(buf) == 0 {
		return false
	}
	p := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	lo := uintptr(unsafe.Pointer(unsafe.SliceData(c.rd.data)))
	return p >= lo && p < lo+uintptr(len(c.rd.data))
}

// advanceRead publishes the pending tail advance, returning the consumed
// frame's bytes to the producer.
func (c *Conn) advanceRead() {
	if c.pendingAdvance == 0 {
		return
	}
	c.rd.tail.Store(c.rd.tail.Load() + c.pendingAdvance)
	c.pendingAdvance = 0
}

// frameErr wraps err as a *transport.FrameError unless it already is one.
func frameErr(op string, typ uint8, seq uint64, err error) error {
	var fe *transport.FrameError
	if errors.As(err, &fe) {
		return err
	}
	return &transport.FrameError{Op: op, Type: typ, Seq: seq, Err: err}
}
