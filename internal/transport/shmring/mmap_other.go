//go:build !unix

package shmring

import (
	"errors"
	"os"
)

// errMmapUnsupported gates the file-backed rendezvous path off on platforms
// without mmap; in-process Pair connections still work everywhere.
var errMmapUnsupported = errors.New("shmring: mmap unsupported on this platform")

// mmapFile always fails here: shm:// rendezvous needs a unix platform.
func mmapFile(*os.File, int) ([]byte, func() error, error) {
	return nil, nil, errMmapUnsupported
}
