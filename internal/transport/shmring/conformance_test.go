package shmring

import (
	"bytes"
	"errors"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
)

// conformanceEnd is one side of a connected pair under test: the seam
// implementation plus a raw-injection hook that pushes arbitrary frame-stream
// bytes toward the peer, bypassing the well-formed WriteFrame path.
type conformanceEnd struct {
	ft  transport.FrameTransport
	raw func([]byte) error
}

// openNetPair builds a connected socket pair through the real listener and
// dialer for a spec, keeping the dialer's net.Conn for raw injection.
func openNetPair(t *testing.T, spec string) (a, b conformanceEnd) {
	t.Helper()
	l, err := transport.Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	accepted := make(chan transport.FrameTransport, 1)
	go func() {
		ft, err := l.AcceptFrame()
		if err != nil {
			return
		}
		accepted <- ft
	}()
	sp, err := transport.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	addr := sp.Addr
	if sp.Scheme == "tcp" {
		// The spec asked for port 0; dial what the listener actually bound.
		addr = l.Addr()
	}
	nc, err := net.DialTimeout(sp.Scheme, addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted
	t.Cleanup(func() { srv.Close() })
	a = conformanceEnd{
		ft:  transport.NewConn(nc),
		raw: func(p []byte) error { _, err := nc.Write(p); return err },
	}
	return a, conformanceEnd{ft: srv}
}

// injectRaw publishes arbitrary bytes into c's write ring as if they were a
// frame — the shm analogue of writing garbage to a socket. Test-only; the
// bytes must fit the ring's contiguous tail (fresh rings in these tests do).
func injectRaw(c *Conn, p []byte) error {
	w := &c.wr
	head := w.head.Load()
	pos := head & w.mask
	if uint64(len(p)) > uint64(len(w.data))-pos {
		return errors.New("injectRaw: would wrap")
	}
	copy(w.data[pos:], p)
	w.head.Store(head + uint64(len(p)))
	return nil
}

// harnesses enumerates every transport family the conformance suite runs
// against. The shm entries cover both the in-process pair and the full
// file-rendezvous path.
func harnesses(t *testing.T) []struct {
	name string
	open func(t *testing.T) (a, b conformanceEnd)
} {
	return []struct {
		name string
		open func(t *testing.T) (a, b conformanceEnd)
	}{
		{"tcp", func(t *testing.T) (conformanceEnd, conformanceEnd) {
			return openNetPair(t, "tcp://127.0.0.1:0")
		}},
		{"unix", func(t *testing.T) (conformanceEnd, conformanceEnd) {
			return openNetPair(t, "unix://"+filepath.Join(t.TempDir(), "c.sock"))
		}},
		{"shm", func(t *testing.T) (conformanceEnd, conformanceEnd) {
			cl, srv, err := Pair(1 << 16)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close(); srv.Close() })
			return conformanceEnd{ft: cl, raw: func(p []byte) error { return injectRaw(cl, p) }},
				conformanceEnd{ft: srv}
		}},
		{"shm-rendezvous", func(t *testing.T) (conformanceEnd, conformanceEnd) {
			spec := "shm://" + filepath.Join(t.TempDir(), "rings") + "?ring=65536"
			l, err := transport.Listen(spec)
			if err != nil {
				t.Skipf("shm rendezvous unavailable: %v", err)
			}
			t.Cleanup(func() { l.Close() })
			accepted := make(chan transport.FrameTransport, 1)
			go func() {
				ft, err := l.AcceptFrame()
				if err != nil {
					return
				}
				accepted <- ft
			}()
			cl, err := transport.DialFrame(spec, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			srv := <-accepted
			t.Cleanup(func() { cl.Close(); srv.Close() })
			return conformanceEnd{ft: cl, raw: func(p []byte) error { return injectRaw(cl.(*Conn), p) }},
				conformanceEnd{ft: srv}
		}},
	}
}

// rawFrame hand-encodes one frame for injection, applying mutate to the
// header (after the correct checksum is computed) so tests can forge
// corruption.
func rawFrame(typ uint8, seq uint64, payload []byte, mutate func(*transport.FrameHeader)) []byte {
	h := transport.FrameHeader{
		Magic: transport.FrameMagic, Type: typ,
		Length: uint32(len(payload)), Seq: seq,
	}
	h.Check = h.Sum(payload)
	if mutate != nil {
		mutate(&h)
	}
	return append(h.AppendTo(nil), payload...)
}

// TestConformanceRoundTrip drives every transport through the shared
// contract: bidirectional frames of mixed sizes (including zero-length and
// ring-wrapping runs), payload integrity, ownership release, and pool
// balance. Run under -race this also checks the publish/consume fences.
func TestConformanceRoundTrip(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			gets0, puts0 := event.PoolStats()
			a, b := h.open(t)

			// Mixed sizes force several ring wraps on a 64 KiB ring and
			// cover the coalesced and vectored socket write paths.
			sizes := []int{0, 1, 7, 100, 4096, 9000, 100, 0, 25000, 3}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // echo server on b
				defer wg.Done()
				for {
					fh, payload, err := b.ft.ReadFrame()
					if err != nil {
						return
					}
					werr := b.ft.WriteFrame(fh.Type, payload)
					b.ft.ReleasePayload(payload)
					if werr != nil {
						return
					}
				}
			}()

			for round := 0; round < 8; round++ {
				for i, n := range sizes {
					out := make([]byte, n)
					for j := range out {
						out[j] = byte(round + i + j)
					}
					if err := a.ft.WriteFrame(transport.FramePacket, out); err != nil {
						t.Fatalf("round %d frame %d write: %v", round, i, err)
					}
					fh, back, err := a.ft.ReadFrame()
					if err != nil {
						t.Fatalf("round %d frame %d read: %v", round, i, err)
					}
					if fh.Type != transport.FramePacket || int(fh.Length) != n || !bytes.Equal(back, out) {
						t.Fatalf("round %d frame %d: echo mismatch (type %d, %d bytes)", round, i, fh.Type, fh.Length)
					}
					a.ft.ReleasePayload(back)
				}
			}
			a.ft.Close()
			wg.Wait()
			b.ft.Close()
			gets1, puts1 := event.PoolStats()
			if gets1-gets0 != puts1-puts0 {
				t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
			}
		})
	}
}

// TestConformanceCorruptCRC injects a frame whose checksum does not cover
// its bytes: every transport must surface a *transport.FrameError wrapping
// ErrBadChecksum, never deliver the payload.
func TestConformanceCorruptCRC(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			a, b := h.open(t)
			if err := a.raw(rawFrame(transport.FramePacket, 0, []byte("payload"), func(fh *transport.FrameHeader) {
				fh.Check ^= 0xdeadbeef
			})); err != nil {
				t.Fatal(err)
			}
			b.ft.SetReadTimeout(5 * time.Second)
			_, payload, err := b.ft.ReadFrame()
			if payload != nil {
				t.Fatal("corrupt frame delivered a payload")
			}
			var fe *transport.FrameError
			if !errors.As(err, &fe) || !errors.Is(err, transport.ErrBadChecksum) {
				t.Fatalf("corrupt CRC surfaced %v, want a FrameError wrapping ErrBadChecksum", err)
			}
		})
	}
}

// TestConformanceTruncatedFrame injects a header announcing more payload
// than ever arrives, then closes the writer: the reader must fail with a
// typed *transport.FrameError — never a bare io.EOF, which is reserved for a
// clean close at a frame boundary.
func TestConformanceTruncatedFrame(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			a, b := h.open(t)
			full := rawFrame(transport.FramePacket, 0, make([]byte, 100), nil)
			if err := a.raw(full[:transport.FrameHeaderSize+10]); err != nil {
				t.Fatal(err)
			}
			a.ft.Close()
			b.ft.SetReadTimeout(5 * time.Second)
			_, payload, err := b.ft.ReadFrame()
			if payload != nil {
				t.Fatal("truncated frame delivered a payload")
			}
			if err == nil || errors.Is(err, io.EOF) && !isFrameError(err) {
				t.Fatalf("truncated frame surfaced %v, want a typed FrameError", err)
			}
			var fe *transport.FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("truncated frame surfaced %T (%v), want *transport.FrameError", err, err)
			}
		})
	}
}

func isFrameError(err error) bool {
	var fe *transport.FrameError
	return errors.As(err, &fe)
}

// TestConformanceCleanEOF pins the other half of the error contract: a peer
// that closes between frames yields bare io.EOF on every transport.
func TestConformanceCleanEOF(t *testing.T) {
	for _, h := range harnesses(t) {
		t.Run(h.name, func(t *testing.T) {
			a, b := h.open(t)
			if err := a.ft.WriteFrame(transport.FrameEnd, nil); err != nil {
				t.Fatal(err)
			}
			a.ft.Close()
			b.ft.SetReadTimeout(5 * time.Second)
			fh, payload, err := b.ft.ReadFrame()
			if err != nil || fh.Type != transport.FrameEnd {
				t.Fatalf("pre-close frame: type %d err %v", fh.Type, err)
			}
			b.ft.ReleasePayload(payload)
			if _, _, err := b.ft.ReadFrame(); err != io.EOF {
				t.Fatalf("read after clean close = %v, want bare io.EOF", err)
			}
		})
	}
}
