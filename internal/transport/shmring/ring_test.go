package shmring

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/transport"
)

// TestWrapAlignments streams thousands of varied-size frames through a
// one-page ring so the pad-to-wrap protocol crosses every alignment class:
// frames ending exactly at the boundary, pads long enough to carry padMagic,
// and tails too short for even the magic word (< 4 bytes).
func TestWrapAlignments(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	const frames = 5000
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			n := i % 97
			out := make([]byte, n)
			for j := range out {
				out[j] = byte(i + j)
			}
			if err := a.WriteFrame(transport.FramePacket, out); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()

	for i := 0; i < frames; i++ {
		fh, payload, err := b.ReadFrame()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if int(fh.Length) != i%97 {
			t.Fatalf("frame %d: %d bytes, want %d", i, fh.Length, i%97)
		}
		for j := range payload {
			if payload[j] != byte(i+j) {
				t.Fatalf("frame %d byte %d corrupted", i, j)
			}
		}
		b.ReleasePayload(payload)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestReadTimeoutIsNetError pins the deadline contract: an expired read
// deadline surfaces as a *transport.FrameError whose cause satisfies
// net.Error with Timeout() true — exactly what the server's idle-reap path
// matches on.
func TestReadTimeoutIsNetError(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	b.SetReadTimeout(10 * time.Millisecond)
	_, _, rerr := b.ReadFrame()
	var fe *transport.FrameError
	if !errors.As(rerr, &fe) {
		t.Fatalf("timeout surfaced %T (%v), want *transport.FrameError", rerr, rerr)
	}
	var ne net.Error
	if !errors.As(rerr, &ne) || !ne.Timeout() {
		t.Fatalf("timeout error %v must satisfy net.Error.Timeout()", rerr)
	}
	if stats := b.LinkStats(); stats.ReaderParks == 0 {
		t.Fatal("a timed-out read must have parked at least once")
	}
}

// TestWriteTimeoutOnFullRing fills the ring with no consumer: the next write
// must time out (net.Error) instead of spinning forever, and park counters
// must record the writer as the blocked side.
func TestWriteTimeoutOnFullRing(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	full := make([]byte, a.MaxPayload())
	// Two max frames fill the one-page ring exactly.
	for i := 0; i < 2; i++ {
		if err := a.WriteFrame(transport.FramePacket, full); err != nil {
			t.Fatalf("fill frame %d: %v", i, err)
		}
	}
	a.SetWriteTimeout(10 * time.Millisecond)
	werr := a.WriteFrame(transport.FramePacket, full)
	var ne net.Error
	if !errors.As(werr, &ne) || !ne.Timeout() {
		t.Fatalf("full-ring write surfaced %v, want a net.Error timeout", werr)
	}
	if stats := a.LinkStats(); stats.WriterParks == 0 {
		t.Fatal("a timed-out write must have parked at least once")
	}
	// Draining the ring unblocks the writer again.
	a.SetWriteTimeout(time.Second)
	for i := 0; i < 2; i++ {
		_, p, err := b.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		b.ReleasePayload(p)
	}
	if err := a.WriteFrame(transport.FramePacket, full); err != nil {
		t.Fatalf("write after drain: %v", err)
	}
}

// TestSetDeadlineNowInterrupts mirrors the socket cancellation hook: a
// blocked reader must fail promptly once SetDeadlineNow fires.
func TestSetDeadlineNowInterrupts(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := b.ReadFrame()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	b.SetDeadlineNow()
	select {
	case err := <-done:
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Fatalf("interrupted read surfaced %v, want a timeout", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock after SetDeadlineNow")
	}
}

// TestCloseSemantics pins the teardown contract: the peer's reader drains
// published frames then sees bare io.EOF; the peer's writer sees
// ErrPeerClosed; the closer's own operations see ErrClosed.
func TestCloseSemantics(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	a.Close()

	if fh, _, err := b.ReadFrame(); err != nil || fh.Type != transport.FrameEnd {
		t.Fatalf("frame published before close: type %d err %v", fh.Type, err)
	}
	if _, _, err := b.ReadFrame(); err != io.EOF {
		t.Fatalf("drained ring after peer close = %v, want bare io.EOF", err)
	}
	if err := b.WriteFrame(transport.FramePacket, []byte("x")); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("write to closed peer = %v, want ErrPeerClosed", err)
	}
	if _, _, err := a.ReadFrame(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read on locally closed conn = %v, want ErrClosed", err)
	}
	if err := a.WriteFrame(transport.FramePacket, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write on locally closed conn = %v, want ErrClosed", err)
	}
	b.Close()
}

// TestReserveCommit covers the zero-copy producer API: in-place encoding,
// shrunk commits, and the misuse guards.
func TestReserveCommit(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()

	slot, err := a.ReserveFrame(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(slot) != 64 {
		t.Fatalf("reserved slot is %d bytes, want 64", len(slot))
	}
	if _, err := a.ReserveFrame(8); err == nil {
		t.Fatal("double reservation must fail")
	}
	msg := []byte("packed in place")
	copy(slot, msg)
	if err := a.CommitFrame(transport.FramePacket, len(msg)); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := b.ReadFrame()
	if err != nil || fh.Length != uint32(len(msg)) || !bytes.Equal(payload, msg) {
		t.Fatalf("shrunk commit read back type=%d len=%d err=%v", fh.Type, fh.Length, err)
	}
	b.ReleasePayload(payload)

	if err := a.CommitFrame(transport.FramePacket, 1); err == nil {
		t.Fatal("commit without a reservation must fail")
	}
	if _, err := a.ReserveFrame(a.MaxPayload() + 1); !errors.Is(err, transport.ErrFrameTooLarge) {
		t.Fatalf("oversized reservation = %v, want ErrFrameTooLarge", err)
	}
	if slot, err = a.ReserveFrame(8); err != nil {
		t.Fatal(err)
	}
	if err := a.CommitFrame(transport.FramePacket, 9); err == nil {
		t.Fatal("commit beyond the reservation must fail")
	}
}

// TestAdoptWriteFrame pins the send-side ownership transfer: the pooled
// buffer is consumed by the call, keeping the pool balanced without the
// caller releasing anything.
func TestAdoptWriteFrame(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	buf := event.GetBuf(32)[:32]
	for i := range buf {
		buf[i] = byte(i)
	}
	if err := a.AdoptWriteFrame(transport.FramePacket, buf); err != nil {
		t.Fatal(err)
	}
	_, payload, err := b.ReadFrame()
	if err != nil || len(payload) != 32 {
		t.Fatalf("adopted frame read back %d bytes, err %v", len(payload), err)
	}
	b.ReleasePayload(payload)
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

// TestReleasePayloadForeignBuffer: a pooled buffer routed to the ring's
// ReleasePayload (the seam's socket-side convention) must go back to the
// pool, not corrupt the tail.
func TestReleasePayloadForeignBuffer(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	a, _, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	a.ReleasePayload(nil) // no-op
	a.ReleasePayload(event.GetBuf(16)[:16])
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

// TestReadFrameAutoRelease: a second ReadFrame without an explicit release
// recycles the outstanding slot, so a sloppy caller degrades to one-frame
// buffering instead of deadlocking the producer.
func TestReadFrameAutoRelease(t *testing.T) {
	a, b, err := Pair(MinRingBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	for i := 0; i < 200; i++ { // 200 × 44-byte frames ≫ one page: requires recycling
		if err := a.WriteFrame(transport.FramePacket, make([]byte, 20)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if _, _, err := b.ReadFrame(); err != nil { // never released explicitly
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

// TestParseAddr covers the shm spec option grammar.
func TestParseAddr(t *testing.T) {
	dir, rb, err := parseAddr("/tmp/rings")
	if err != nil || dir != "/tmp/rings" || rb != DefaultRingBytes {
		t.Fatalf("plain dir: %q %d %v", dir, rb, err)
	}
	dir, rb, err = parseAddr("/tmp/rings?ring=65536")
	if err != nil || dir != "/tmp/rings" || rb != 65536 {
		t.Fatalf("ring option: %q %d %v", dir, rb, err)
	}
	for _, bad := range []string{"", "?ring=4096", "/d?ring=100", "/d?ring=0", "/d?bogus=1", "/d?ring=1073741825"} {
		if _, _, err := parseAddr(bad); err == nil {
			t.Fatalf("parseAddr(%q) must fail", bad)
		}
	}
}

// TestListenRejectsBadRingSpec: a malformed ring option survives ParseSpec
// (scheme options are opaque there) and is diagnosed by the shm scheme at
// Listen time, naming the valid range.
func TestListenRejectsBadRingSpec(t *testing.T) {
	for _, spec := range []string{
		"shm://" + t.TempDir() + "?ring=not-a-number",
		"shm://" + t.TempDir() + "?ring=100", // not a power of two
		"shm://" + t.TempDir() + "?blocksize=4096",
	} {
		l, err := transport.Listen(spec)
		if err == nil {
			l.Close()
			t.Errorf("Listen(%q) must fail on the malformed option", spec)
			continue
		}
		if !strings.Contains(err.Error(), "shmring:") {
			t.Errorf("Listen(%q) = %v, want an shmring option diagnosis", spec, err)
		}
	}
}

// TestPairValidation rejects non-power-of-two and out-of-range ring sizes.
func TestPairValidation(t *testing.T) {
	for _, bad := range []int{100, MinRingBytes - 1, MinRingBytes + 1, MaxRingBytes * 2} {
		if _, _, err := Pair(bad); err == nil {
			t.Fatalf("Pair(%d) must fail", bad)
		}
	}
}

// TestOpenSegmentValidation rejects malformed segment mappings before any
// ring pointer is trusted.
func TestOpenSegmentValidation(t *testing.T) {
	if _, err := openSegment(make([]byte, 100)); err == nil {
		t.Fatal("short segment must be rejected")
	}
	mem := make([]byte, segmentSize(MinRingBytes))
	if _, err := openSegment(mem); err == nil {
		t.Fatal("zero magic must be rejected")
	}
	seg := initSegment(mem, MinRingBytes)
	if _, err := openSegment(mem); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	_ = seg
	if _, err := openSegment(mem[:len(mem)-8]); err == nil {
		t.Fatal("size/ringBytes mismatch must be rejected")
	}
}

// TestDialTimeoutWithoutListener: an unclaimed segment must error out within
// the dial timeout and leave no file behind.
func TestDialTimeoutWithoutListener(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rings")
	_, err := transport.DialFrame("shm://"+dir+"?ring=4096", 50*time.Millisecond)
	if err == nil {
		t.Fatal("dial with no listener must time out")
	}
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		t.Fatalf("abandoned segment file %s left behind", e.Name())
	}
}

// TestListenerIgnoresJunk: foreign files in the rendezvous directory must
// not break accepts.
func TestListenerIgnoresJunk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "rings")
	spec := "shm://" + dir + "?ring=4096"
	l, err := transport.Listen(spec)
	if err != nil {
		t.Skipf("shm rendezvous unavailable: %v", err)
	}
	defer l.Close()
	if err := os.WriteFile(filepath.Join(dir, "note.txt"), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "bogus"+segSuffix), make([]byte, 64), 0o600); err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.FrameTransport, 1)
	go func() {
		ft, err := l.AcceptFrame()
		if err == nil {
			accepted <- ft
		}
	}()
	cl, err := transport.DialFrame(spec, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	srv := <-accepted
	defer srv.Close()
	if err := cl.WriteFrame(transport.FrameEnd, nil); err != nil {
		t.Fatal(err)
	}
	if fh, _, err := srv.ReadFrame(); err != nil || fh.Type != transport.FrameEnd {
		t.Fatalf("frame over rendezvous conn: type %d err %v", fh.Type, err)
	}
}

// TestListenerCloseUnblocksAccept: Close must fail a blocked AcceptFrame.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	l, err := transport.Listen("shm://" + filepath.Join(t.TempDir(), "rings"))
	if err != nil {
		t.Skipf("shm rendezvous unavailable: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.AcceptFrame()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("AcceptFrame after Close must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("AcceptFrame did not unblock on Close")
	}
}
