package shmring

import (
	"io"
	"testing"

	"repro/internal/transport"
)

// FuzzShmRingFrame publishes one well-formed frame into a ring, flips one
// byte of the shared mapping — a misbehaving peer or a stray write through
// the mmap — and asserts the reader never delivers silently corrupted data:
// every flip inside the published frame must surface a typed error (never a
// bare io.EOF, never a clean payload with the wrong bytes), and nothing may
// panic or read out of bounds.
func FuzzShmRingFrame(f *testing.F) {
	f.Add([]byte{}, uint32(0), byte(0))
	f.Add([]byte("hello"), uint32(0), byte(0x80))  // flip in magic
	f.Add([]byte("hello"), uint32(8), byte(0x01))  // flip in length
	f.Add([]byte("hello"), uint32(20), byte(0xff)) // flip in checksum
	f.Add([]byte("hello"), uint32(24), byte(0x55)) // flip in payload
	f.Add(make([]byte, 4096), uint32(30), byte(0x10))
	f.Fuzz(func(t *testing.T, data []byte, off uint32, flip byte) {
		const ringBytes = 1 << 16
		if len(data) > maxPayload(ringBytes) {
			data = data[:maxPayload(ringBytes)]
		}
		cl, srv, err := Pair(ringBytes)
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		defer srv.Close()
		if err := cl.WriteFrame(transport.FramePacket, data); err != nil {
			t.Fatal(err)
		}
		total := transport.FrameHeaderSize + len(data)
		pos := int(off) % total
		cl.wr.data[pos] ^= flip | 1 // always a real flip

		srv.SetReadTimeout(0) // data is already published; reads never block
		fh, payload, rerr := srv.ReadFrame()
		if rerr == nil {
			t.Fatalf("flipped byte %d of a %d-byte frame delivered cleanly (type %d, %d payload bytes)",
				pos, total, fh.Type, len(payload))
		}
		if rerr == io.EOF {
			t.Fatalf("flipped byte %d surfaced bare io.EOF; corruption must be typed", pos)
		}
		if payload != nil {
			t.Fatalf("flipped frame returned an error AND a payload")
		}
	})
}
