// Package shmring is the same-host fast path of the transport seam: a pair of
// mmap-backed lock-free SPSC ring buffers (one per direction) carrying the
// DTH1 v2 frame layout byte-identically to the socket transports, with no
// syscall and no data copy on the receive path.
//
// A connection is one shared segment:
//
//	offset            size       content
//	0                 4096       segment header: magic, version, ring bytes,
//	                             rendezvous state word
//	4096              4096       ring 0 control: head | producer-closed ·
//	                             (cache line) · tail | consumer-closed
//	8192              4096       ring 1 control (same layout)
//	12288             ringBytes  ring 0 data  (client → server)
//	12288+ringBytes   ringBytes  ring 1 data  (server → client)
//
// head and tail are monotonic uint64 byte counters (never wrapped); a ring
// position is counter & (ringBytes-1), so full (head-tail == ringBytes) and
// empty (head == tail) need no wasted slot. The producer owns head, the
// consumer owns tail, and each side only ever stores its own counter —
// single-producer/single-consumer with one atomic publish per frame.
//
// Memory ordering: the producer writes the frame bytes into the data region
// first, then stores head; the consumer loads head, then reads the frame
// bytes. Go's sync/atomic operations are sequentially consistent, so the
// head store is a release and the head load an acquire — every data byte
// written before the publish is visible after the observation. The tail
// store after consumption is the same fence in the other direction, keeping
// the producer from overwriting a payload the consumer still aliases.
//
// Frames never wrap: a frame that would cross the ring end is preceded by a
// pad that skips to the boundary, so every header and payload is one
// contiguous mmap slice. The pad protocol is deterministic on both sides —
// if the contiguous tail of the ring is shorter than a frame header the
// consumer skips it unconditionally; otherwise a padMagic word marks the
// skip. The producer publishes pad+frame with a single head store, so the
// consumer never observes a bare pad at the head of the ring.
//
// Waiting is futex-free spin-then-park: a bounded burst of
// runtime.Gosched() yields (the ring usually turns over within a scheduling
// quantum), then escalating short sleeps. Parks are counted per side and
// surface as transport.LinkStats — the networked analogue of the pipeline's
// stall counters, telling the sweep which side of the ring is the
// bottleneck.
//
// Importing the package registers the "shm" scheme, so
// transport.DialFrame("shm:///dir") and transport.Listen("shm:///dir") work
// after a blank import. Rendezvous is a directory: the dialer creates and
// maps a segment file, marks it ready, and waits; the listener polls the
// directory, claims ready segments with a CAS, and unlinks the file — both
// sides keep their mappings, so an accepted connection leaves nothing on
// disk.
package shmring

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"unsafe"

	"repro/internal/transport"
)

const (
	// segMagic marks a segment header ("DTHS" little-endian).
	segMagic uint32 = 0x53485444
	// segVersion is the segment layout version; bump on incompatible changes.
	segVersion uint32 = 1

	// pageSize is the header/control page granularity.
	pageSize = 4096
	// headerPages is the fixed prefix before ring data: segment header plus
	// one control page per ring, keeping each side's hot words on pages (and
	// cache lines) of their own.
	headerPages = 3

	// padMagic marks a pad-to-wrap skip in ring data. Distinct from
	// transport.FrameMagic, which every real frame starts with.
	padMagic uint32 = 0x30444150 // "PAD0"

	// DefaultRingBytes is the per-direction ring size when the address spec
	// carries no ?ring= option.
	DefaultRingBytes = 1 << 20
	// MinRingBytes bounds the smallest usable ring (one page).
	MinRingBytes = pageSize
	// MaxRingBytes bounds the mapping size a spec can request.
	MaxRingBytes = 1 << 30
)

// Rendezvous states, held in the segment header's state word.
const (
	stateInit     uint32 = 0 // dialer still initializing the segment
	stateReady    uint32 = 1 // dialer done; segment claimable by a listener
	stateAccepted uint32 = 2 // a listener claimed it
)

// Segment header field offsets (within page 0).
const (
	offMagic     = 0
	offVersion   = 4
	offRingBytes = 8
	offState     = 16
)

// Ring control field offsets (within a ring's control page). The producer's
// words and the consumer's words sit on separate cache lines so the two
// sides never false-share.
const (
	offHead       = 0
	offProdClosed = 8
	offTail       = 64
	offConsClosed = 72
)

// segmentSize is the file/mapping size for a ring size.
func segmentSize(ringBytes int) int { return headerPages*pageSize + 2*ringBytes }

// validRingBytes reports whether n is a usable power-of-two ring size.
func validRingBytes(n int) bool {
	return n >= MinRingBytes && n <= MaxRingBytes && n&(n-1) == 0
}

// maxPayload is the largest payload a ring can carry while the pad-to-wrap
// protocol still guarantees progress: a frame plus its worst-case pad must
// fit in an empty ring, and the pad is always shorter than the frame that
// triggered it, so half the ring (minus the header) is always safe.
func maxPayload(ringBytes int) int {
	n := ringBytes/2 - transport.FrameHeaderSize
	if n > transport.MaxFrameBytes {
		n = transport.MaxFrameBytes
	}
	return n
}

// u64at and u32at overlay atomics on mapped control words. The offsets used
// are all 8-aligned within page-aligned mappings (and the heap constructor
// allocates uint64-backed memory), satisfying sync/atomic's alignment rule.
func u64at(b []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&b[off]))
}

func u32at(b []byte, off int) *atomic.Uint32 {
	return (*atomic.Uint32)(unsafe.Pointer(&b[off]))
}

// segment is one mapped (or heap-backed) connection segment.
type segment struct {
	mem       []byte
	ringBytes int
	unmap     func() error // nil for heap segments
	refs      atomic.Int32 // conns sharing this mapping (loopback pairs share)
}

// initSegment stamps a fresh segment header into mem (len == segmentSize).
func initSegment(mem []byte, ringBytes int) *segment {
	for i := 0; i < headerPages*pageSize; i++ {
		mem[i] = 0
	}
	binary.LittleEndian.PutUint32(mem[offMagic:], segMagic)
	binary.LittleEndian.PutUint32(mem[offVersion:], segVersion)
	binary.LittleEndian.PutUint64(mem[offRingBytes:], uint64(ringBytes))
	return &segment{mem: mem, ringBytes: ringBytes}
}

// openSegment validates an existing segment mapping.
func openSegment(mem []byte) (*segment, error) {
	if len(mem) < headerPages*pageSize {
		return nil, fmt.Errorf("shmring: segment too small (%d bytes)", len(mem))
	}
	if m := binary.LittleEndian.Uint32(mem[offMagic:]); m != segMagic {
		return nil, fmt.Errorf("shmring: bad segment magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(mem[offVersion:]); v != segVersion {
		return nil, fmt.Errorf("shmring: segment version %d (this binary speaks %d)", v, segVersion)
	}
	rb := binary.LittleEndian.Uint64(mem[offRingBytes:])
	if rb > MaxRingBytes || !validRingBytes(int(rb)) {
		return nil, fmt.Errorf("shmring: segment ring size %d is not a usable power of two", rb)
	}
	if len(mem) != segmentSize(int(rb)) {
		return nil, fmt.Errorf("shmring: segment is %d bytes, want %d for %d-byte rings",
			len(mem), segmentSize(int(rb)), rb)
	}
	return &segment{mem: mem, ringBytes: int(rb)}, nil
}

// state exposes the rendezvous word.
func (s *segment) state() *atomic.Uint32 { return u32at(s.mem, offState) }

// ring returns the i'th ring (0 or 1) as control-word pointers plus its data
// region.
func (s *segment) ring(i int) ring {
	ctrl := s.mem[(1+i)*pageSize : (2+i)*pageSize]
	dataOff := headerPages*pageSize + i*s.ringBytes
	return ring{
		head:       u64at(ctrl, offHead),
		prodClosed: u32at(ctrl, offProdClosed),
		tail:       u64at(ctrl, offTail),
		consClosed: u32at(ctrl, offConsClosed),
		data:       s.mem[dataOff : dataOff+s.ringBytes : dataOff+s.ringBytes],
		mask:       uint64(s.ringBytes - 1),
	}
}

// release drops one reference; the last one unmaps.
func (s *segment) release() error {
	if s.refs.Add(-1) > 0 || s.unmap == nil {
		return nil
	}
	return s.unmap()
}

// ring is one direction's shared state: the producer owns head and
// prodClosed, the consumer owns tail and consClosed; each side only loads
// the other's words.
type ring struct {
	head       *atomic.Uint64
	prodClosed *atomic.Uint32
	tail       *atomic.Uint64
	consClosed *atomic.Uint32
	data       []byte
	mask       uint64
}

// Pair returns the two ends of an in-process connection over an anonymous
// heap segment — the loopback form tests and benchmarks use when no
// cross-process rendezvous is needed.
func Pair(ringBytes int) (client, server *Conn, err error) {
	if ringBytes <= 0 {
		ringBytes = DefaultRingBytes
	}
	if !validRingBytes(ringBytes) {
		return nil, nil, fmt.Errorf("shmring: ring size %d is not a power of two in [%d, %d]",
			ringBytes, MinRingBytes, MaxRingBytes)
	}
	// Back the segment with uint64s so the control-word atomics are aligned.
	words := make([]uint64, segmentSize(ringBytes)/8)
	mem := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), segmentSize(ringBytes))
	seg := initSegment(mem, ringBytes)
	seg.refs.Store(2)
	return newConn(seg, roleClient, "shm://(loopback)"),
		newConn(seg, roleServer, "shm://(loopback)"), nil
}

// init registers the scheme: a blank import of this package makes
// "shm://dir" specs dialable and listenable through the transport registry.
func init() {
	transport.RegisterScheme("shm", transport.Scheme{
		Dial:   dialShm,
		Listen: listenShm,
	})
}
