//go:build unix

package shmring

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// errMmapUnsupported is never returned on unix; it exists so platform
// capability checks compile on both build flavors.
var errMmapUnsupported = errors.New("shmring: mmap unsupported on this platform")

// mmapFile maps size bytes of f shared and read-write. A nil f probes
// platform support only (the listener's startup check).
func mmapFile(f *os.File, size int) ([]byte, func() error, error) {
	if f == nil {
		return nil, nil, nil
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size,
		syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("shmring: mmap: %w", err)
	}
	return mem, func() error { return syscall.Munmap(mem) }, nil
}
