package shmring

import (
	"testing"

	"repro/internal/transport"
	"repro/internal/wire"
)

// BenchmarkShmFrameRoundTrip is the ring twin of the transport package's
// BenchmarkFrameRoundTrip (and its unix-socket variant): one full frame round
// trip — encode, checksum, publish, consume, checksum-verify, echo back —
// over a loopback ring pair. benchjson's shm area tracks all three in
// BENCH_shm.json, so the file itself is the shm-vs-socket RTT comparison.
func BenchmarkShmFrameRoundTrip(b *testing.B) {
	client, server, err := Pair(DefaultRingBytes)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		defer server.Close()
		for {
			h, buf, err := server.ReadFrame()
			if err != nil {
				return // client closed after the timed loop
			}
			err = server.WriteFrame(h.Type, buf)
			server.ReleasePayload(buf)
			if err != nil {
				return
			}
		}
	}()

	payload := make([]byte, 4096) // Palladium's PacketBytes
	for i := range payload {
		payload[i] = byte(i)
	}
	b.SetBytes(int64(2 * (transport.FrameHeaderSize + len(payload)))) // both directions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := client.WriteFrame(transport.FramePacket, payload); err != nil {
			b.Fatal(err)
		}
		_, buf, err := client.ReadFrame()
		if err != nil {
			b.Fatal(err)
		}
		if len(buf) != len(payload) {
			b.Fatalf("echo returned %d bytes, want %d", len(buf), len(payload))
		}
		client.ReleasePayload(buf)
	}
	b.StopTimer()
	client.Close()
	<-done
}

// BenchmarkShmPackCheckZeroCopy measures the batch-pack → publish → consume →
// checksum-verify path with the zero-copy producer API: wire items are
// encoded by transport.AppendItems directly into a ReserveFrame slot, the
// consumer verifies and releases the frame in place, and the per-iteration
// allocation count must be zero — the packet bytes are written exactly once
// (at encode time, into the shared mapping) and never copied again.
func BenchmarkShmPackCheckZeroCopy(b *testing.B) {
	client, server, err := Pair(DefaultRingBytes)
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	defer server.Close()

	// One cycle's worth of commit items, the shape the batch packer flushes.
	itemPayload := make([]byte, 64)
	for i := range itemPayload {
		itemPayload[i] = byte(i * 3)
	}
	items := make([]wire.Item, 16)
	for i := range items {
		items[i] = wire.Item{Type: 1, Core: uint8(i % 4), Slot: uint8(i), Payload: itemPayload}
	}
	size := transport.ItemsSize(items)

	b.SetBytes(int64(transport.FrameHeaderSize + size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, err := client.ReserveFrame(size)
		if err != nil {
			b.Fatal(err)
		}
		enc, err := transport.AppendItems(slot[:0], items)
		if err != nil {
			b.Fatal(err)
		}
		if err := client.CommitFrame(transport.FrameItems, len(enc)); err != nil {
			b.Fatal(err)
		}
		fh, payload, err := server.ReadFrame() // CRC-verifies in place
		if err != nil {
			b.Fatal(err)
		}
		if int(fh.Length) != size {
			b.Fatalf("consumed %d bytes, want %d", fh.Length, size)
		}
		server.ReleasePayload(payload)
	}
}
