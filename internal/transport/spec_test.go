package transport

import (
	"strings"
	"testing"
)

// TestParseSpecErrors pins the diagnosis each malformed spec produces: a
// user pasting a broken -remote flag gets told what is wrong, not just that
// something is.
func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantSub string
	}{
		{"", "empty address spec"},
		{"://localhost:9", "empty scheme"},
		{"tcp://", "empty address"},
		{"unix://", "empty address"},
		{"shm://", "empty address"},
		{"unix:", "empty path"}, // legacy unix form with no path
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) = nil error, want %q", tc.in, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q) = %q, want mention of %q", tc.in, err, tc.wantSub)
		}
	}
}

// TestParseSpecUnknownScheme: unknown schemes parse — registry resolution is
// Dial/Listen's job — but resolution then fails by name.
func TestParseSpecUnknownScheme(t *testing.T) {
	sp, err := ParseSpec("carrier-pigeon://loft:1")
	if err != nil || sp.Scheme != "carrier-pigeon" || sp.Addr != "loft:1" {
		t.Fatalf("ParseSpec(carrier-pigeon://loft:1) = %+v, %v", sp, err)
	}
	if _, err := Listen("carrier-pigeon://loft:1"); err == nil ||
		!strings.Contains(err.Error(), "carrier-pigeon") {
		t.Errorf("Listen on an unregistered scheme must fail naming it, got %v", err)
	}
}

// TestParseSpecOpaqueOptions: scheme options ride along in Addr untouched —
// the scheme's own parser (shmring's parseAddr) validates them, so a
// malformed ring size must survive ParseSpec to be diagnosed there.
func TestParseSpecOpaqueOptions(t *testing.T) {
	sp, err := ParseSpec("shm:///tmp/rings?ring=not-a-number")
	if err != nil {
		t.Fatalf("ParseSpec must not validate scheme options: %v", err)
	}
	if sp.Addr != "/tmp/rings?ring=not-a-number" {
		t.Fatalf("Addr = %q, options were mangled", sp.Addr)
	}
}
