package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/event"
)

// coalesceMax bounds the staged-write path: a frame whose header+payload fit
// within it is copied once into the scratch buffer and written with a single
// syscall; anything larger goes out as a two-element writev (net.Buffers) —
// one syscall, zero copies — so big packets never pay a memcpy just to avoid
// a second write.
const coalesceMax = 8 << 10

// Conn frames a net.Conn: vectored, deadline-bounded writes and
// header-validated reads into pooled buffers with a read deadline. It is the
// socket-backed FrameTransport; reads and writes are independently
// goroutine-safe (one reader, one writer is the intended shape; concurrent
// writers serialize on a mutex).
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	writeMu    sync.Mutex
	writeSeq   uint64
	writeArmed bool        // a write deadline is set and must be cleared if WriteTimeout drops to 0
	scratch    []byte      // header + coalesced-payload staging, reused across writes
	vecs       net.Buffers // header+payload iovec staging for the writev path

	readSeq   uint64
	readArmed bool // a read deadline is set and must be cleared if ReadTimeout drops to 0

	// ReadTimeout bounds one blocking ReadFrame (0 = no deadline); the
	// server uses it as the idle-session reaping horizon. WriteTimeout
	// bounds one WriteFrame flush.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// Conn implements the transport seam.
var _ FrameTransport = (*Conn)(nil)

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:       c,
		br:      bufio.NewReaderSize(c, 64<<10),
		scratch: make([]byte, 0, FrameHeaderSize),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetDeadlineNow interrupts any blocked read or write; used by the server's
// forced-drain path.
func (c *Conn) SetDeadlineNow() { c.c.SetDeadline(time.Now()) }

// SetReadTimeout bounds one blocking ReadFrame (0 = no deadline).
func (c *Conn) SetReadTimeout(d time.Duration) { c.ReadTimeout = d }

// SetWriteTimeout bounds one WriteFrame flush (0 = no deadline).
func (c *Conn) SetWriteTimeout(d time.Duration) { c.WriteTimeout = d }

// RemoteAddr reports the peer address for logging.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// ReleasePayload returns a ReadFrame payload to the buffer pool; nil
// (zero-length frame) needs no release.
func (c *Conn) ReleasePayload(buf []byte) {
	if buf != nil {
		event.PutBuf(buf)
	}
}

// WriteFrame sends one frame. The payload is not retained. Errors are typed
// *FrameError so callers can locate the failing frame.
//
// Small frames (≤ coalesceMax) are staged header+payload into one scratch
// buffer and leave in a single Write; larger frames leave as a single writev
// (net.Buffers) with no payload copy. Either way the frame costs exactly one
// syscall on a socket — the old bufio path cost a copy always and two
// syscalls beyond its buffer size.
func (c *Conn) WriteFrame(typ uint8, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return frameErr("write", typ, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload)))
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	// Arm or clear the write deadline per frame, mirroring the read side: a
	// deadline a previous phase armed (the dial handshake) must not keep
	// ticking into a deliberately unbounded write, and with a timeout set, a
	// stalled peer whose socket buffer filled up cannot hang WriteFrame
	// forever.
	if c.WriteTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.WriteTimeout)); err != nil {
			return frameErr("write", typ, c.writeSeq, err)
		}
		c.writeArmed = true
	} else if c.writeArmed {
		if err := c.c.SetWriteDeadline(time.Time{}); err != nil {
			return frameErr("write", typ, c.writeSeq, err)
		}
		c.writeArmed = false
	}
	h := FrameHeader{Magic: FrameMagic, Type: typ, Length: uint32(len(payload)), Seq: c.writeSeq}
	c.scratch = h.AppendTo(c.scratch[:0])
	// The staged header bytes before Check are exactly what Sum covers, so
	// checksum the staging buffer rather than re-encoding the fields.
	sum := crc32Frame(c.scratch[:frameCheckOffset], payload)
	binary.LittleEndian.PutUint32(c.scratch[frameCheckOffset:], sum)
	seq := c.writeSeq
	c.writeSeq++
	if FrameHeaderSize+len(payload) <= coalesceMax {
		c.scratch = append(c.scratch, payload...)
		if _, err := c.c.Write(c.scratch); err != nil {
			return frameErr("write", typ, seq, err)
		}
		return nil
	}
	// Vectored path: header and payload go out in one writev without a copy.
	// WriteTo consumes the iovec in place, so rebuild it from the persistent
	// field each frame — no per-frame allocation.
	c.vecs = append(c.vecs[:0], c.scratch, payload)
	if _, err := c.vecs.WriteTo(c.c); err != nil {
		return frameErr("write", typ, seq, err)
	}
	return nil
}

// ReadFrame reads one frame. The returned payload is a pooled buffer
// (event.GetBuf) that ownership-transfers to the caller: release it with
// ReleasePayload (or event.PutBuf) once consumed, so the pool's get/put
// balance holds across a session. A zero-length payload returns nil and
// needs no release.
//
// Error contract: a connection that closes cleanly between frames returns
// bare io.EOF. Everything else — a connection dying mid-frame (wrapped
// io.ErrUnexpectedEOF), a corrupt header, a checksum mismatch, a sequence
// jump, a deadline expiry — returns a typed *FrameError so callers can tell
// "the stream ended" from "the stream broke".
func (c *Conn) ReadFrame() (FrameHeader, []byte, error) {
	var h FrameHeader
	if c.ReadTimeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(c.ReadTimeout)); err != nil {
			return h, nil, frameErr("read", 0, c.readSeq, err)
		}
		c.readArmed = true
	} else if c.readArmed {
		// The deadline a previous phase armed (e.g. the dial handshake) would
		// otherwise keep ticking and kill a deliberately unbounded read.
		if err := c.c.SetReadDeadline(time.Time{}); err != nil {
			return h, nil, frameErr("read", 0, c.readSeq, err)
		}
		c.readArmed = false
	}
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if err == io.EOF {
			// No header byte arrived: the peer closed at a frame boundary.
			// This is the only clean way for a stream to end.
			return h, nil, io.EOF
		}
		// Some header bytes arrived, then the connection died: mid-frame.
		return h, nil, frameErr("read", 0, c.readSeq, err)
	}
	if _, err := h.DecodeFrom(hdr[:]); err != nil {
		return h, nil, frameErr("read", 0, c.readSeq, err)
	}
	var buf []byte
	if h.Length > 0 {
		buf = event.GetBuf(int(h.Length))[:h.Length]
		if _, err := io.ReadFull(c.br, buf); err != nil {
			event.PutBuf(buf)
			if err == io.EOF {
				// The header promised a payload that never came: mid-frame,
				// not a clean shutdown.
				err = io.ErrUnexpectedEOF
			}
			return h, nil, frameErr("read", h.Type, h.Seq, err)
		}
	}
	// Verify the checksum before trusting any header field beyond Length —
	// in particular before the sequence check, so a corrupted Seq byte
	// reports as corruption, not as a protocol violation.
	if sum := crc32Frame(hdr[:frameCheckOffset], buf); sum != h.Check {
		if buf != nil {
			event.PutBuf(buf)
		}
		return h, nil, frameErr("read", h.Type, h.Seq,
			fmt.Errorf("%w: computed %#x, header says %#x", ErrBadChecksum, sum, h.Check))
	}
	if h.Seq != c.readSeq {
		if buf != nil {
			event.PutBuf(buf)
		}
		return h, nil, frameErr("read", h.Type, h.Seq,
			fmt.Errorf("%w: from %d to %d", ErrSeqJump, c.readSeq, h.Seq))
	}
	c.readSeq++
	return h, buf, nil
}

// crc32Frame extends the CRC32-C of the pre-Check header bytes over the
// payload; kept beside ReadFrame/WriteFrame so both ends share one
// definition with FrameHeader.Sum.
func crc32Frame(hdrPrefix, payload []byte) uint32 {
	sum := crc32.Checksum(hdrPrefix, castagnoli)
	if len(payload) > 0 {
		sum = crc32.Update(sum, castagnoli, payload)
	}
	return sum
}
