package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"sync"
	"time"

	"repro/internal/event"
)

// Conn frames a net.Conn: length-prefixed writes with a write deadline,
// header-validated reads into pooled buffers with a read deadline. Reads and
// writes are independently goroutine-safe (one reader, one writer is the
// intended shape; concurrent writers serialize on a mutex).
type Conn struct {
	c  net.Conn
	br *bufio.Reader

	writeMu  sync.Mutex
	bw       *bufio.Writer
	writeSeq uint64
	scratch  []byte // header + small-payload staging, reused across writes

	readSeq   uint64
	readArmed bool // a read deadline is set and must be cleared if ReadTimeout drops to 0

	// ReadTimeout bounds one blocking ReadFrame (0 = no deadline); the
	// server uses it as the idle-session reaping horizon. WriteTimeout
	// bounds one WriteFrame flush.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
}

// NewConn wraps an established network connection.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		c:       c,
		br:      bufio.NewReaderSize(c, 64<<10),
		bw:      bufio.NewWriterSize(c, 64<<10),
		scratch: make([]byte, 0, FrameHeaderSize),
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.c.Close() }

// SetDeadlineNow interrupts any blocked read or write; used by the server's
// forced-drain path.
func (c *Conn) SetDeadlineNow() { c.c.SetDeadline(time.Now()) }

// RemoteAddr reports the peer address for logging.
func (c *Conn) RemoteAddr() string { return c.c.RemoteAddr().String() }

// WriteFrame sends one frame. The payload is not retained. Errors are typed
// *FrameError so callers can locate the failing frame.
func (c *Conn) WriteFrame(typ uint8, payload []byte) error {
	if len(payload) > MaxFrameBytes {
		return frameErr("write", typ, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload)))
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.WriteTimeout > 0 {
		if err := c.c.SetWriteDeadline(time.Now().Add(c.WriteTimeout)); err != nil {
			return frameErr("write", typ, c.writeSeq, err)
		}
	}
	h := FrameHeader{Magic: FrameMagic, Type: typ, Length: uint32(len(payload)), Seq: c.writeSeq}
	c.scratch = h.AppendTo(c.scratch[:0])
	// The staged header bytes before Check are exactly what Sum covers, so
	// checksum the staging buffer rather than re-encoding the fields.
	sum := crc32Frame(c.scratch[:frameCheckOffset], payload)
	binary.LittleEndian.PutUint32(c.scratch[frameCheckOffset:], sum)
	seq := c.writeSeq
	c.writeSeq++
	if _, err := c.bw.Write(c.scratch); err != nil {
		return frameErr("write", typ, seq, err)
	}
	if _, err := c.bw.Write(payload); err != nil {
		return frameErr("write", typ, seq, err)
	}
	if err := c.bw.Flush(); err != nil {
		return frameErr("write", typ, seq, err)
	}
	return nil
}

// ReadFrame reads one frame. The returned payload is a pooled buffer
// (event.GetBuf) that ownership-transfers to the caller: release it with
// event.PutBuf once consumed, so the pool's get/put balance holds across a
// session. A zero-length payload returns nil and needs no release.
//
// Error contract: a connection that closes cleanly between frames returns
// bare io.EOF. Everything else — a connection dying mid-frame (wrapped
// io.ErrUnexpectedEOF), a corrupt header, a checksum mismatch, a sequence
// jump, a deadline expiry — returns a typed *FrameError so callers can tell
// "the stream ended" from "the stream broke".
func (c *Conn) ReadFrame() (FrameHeader, []byte, error) {
	var h FrameHeader
	if c.ReadTimeout > 0 {
		if err := c.c.SetReadDeadline(time.Now().Add(c.ReadTimeout)); err != nil {
			return h, nil, frameErr("read", 0, c.readSeq, err)
		}
		c.readArmed = true
	} else if c.readArmed {
		// The deadline a previous phase armed (e.g. the dial handshake) would
		// otherwise keep ticking and kill a deliberately unbounded read.
		if err := c.c.SetReadDeadline(time.Time{}); err != nil {
			return h, nil, frameErr("read", 0, c.readSeq, err)
		}
		c.readArmed = false
	}
	var hdr [FrameHeaderSize]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if err == io.EOF {
			// No header byte arrived: the peer closed at a frame boundary.
			// This is the only clean way for a stream to end.
			return h, nil, io.EOF
		}
		// Some header bytes arrived, then the connection died: mid-frame.
		return h, nil, frameErr("read", 0, c.readSeq, err)
	}
	if _, err := h.DecodeFrom(hdr[:]); err != nil {
		return h, nil, frameErr("read", 0, c.readSeq, err)
	}
	var buf []byte
	if h.Length > 0 {
		buf = event.GetBuf(int(h.Length))[:h.Length]
		if _, err := io.ReadFull(c.br, buf); err != nil {
			event.PutBuf(buf)
			if err == io.EOF {
				// The header promised a payload that never came: mid-frame,
				// not a clean shutdown.
				err = io.ErrUnexpectedEOF
			}
			return h, nil, frameErr("read", h.Type, h.Seq, err)
		}
	}
	// Verify the checksum before trusting any header field beyond Length —
	// in particular before the sequence check, so a corrupted Seq byte
	// reports as corruption, not as a protocol violation.
	if sum := crc32Frame(hdr[:frameCheckOffset], buf); sum != h.Check {
		if buf != nil {
			event.PutBuf(buf)
		}
		return h, nil, frameErr("read", h.Type, h.Seq,
			fmt.Errorf("%w: computed %#x, header says %#x", ErrBadChecksum, sum, h.Check))
	}
	if h.Seq != c.readSeq {
		if buf != nil {
			event.PutBuf(buf)
		}
		return h, nil, frameErr("read", h.Type, h.Seq,
			fmt.Errorf("%w: from %d to %d", ErrSeqJump, c.readSeq, h.Seq))
	}
	c.readSeq++
	return h, buf, nil
}

// crc32Frame extends the CRC32-C of the pre-Check header bytes over the
// payload; kept beside ReadFrame/WriteFrame so both ends share one
// definition with FrameHeader.Sum.
func crc32Frame(hdrPrefix, payload []byte) uint32 {
	sum := crc32.Checksum(hdrPrefix, castagnoli)
	if len(payload) > 0 {
		sum = crc32.Update(sum, castagnoli, payload)
	}
	return sum
}

// SplitAddr resolves an address spec into (network, address): "unix:<path>"
// selects a Unix-domain socket, anything else is "host:port" TCP.
func SplitAddr(spec string) (network, addr string) {
	if path, ok := strings.CutPrefix(spec, "unix:"); ok {
		return "unix", path
	}
	return "tcp", spec
}

// Listen opens a listener for an address spec (see SplitAddr).
func Listen(spec string) (net.Listener, error) {
	network, addr := SplitAddr(spec)
	return net.Listen(network, addr)
}
