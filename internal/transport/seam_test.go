package transport

import (
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeTransport is a minimal FrameTransport for registry tests; it also
// reports LinkStats so the Client accessor's StatsReporter path is covered.
type fakeTransport struct {
	FrameTransport
	stats LinkStats
}

func (f *fakeTransport) LinkStats() LinkStats { return f.stats }
func (f *fakeTransport) Close() error         { return nil }

// TestSchemeRegistry pins the pluggable-transport contract: a registered
// scheme resolves through DialFrame and Listen, shows in SchemeNames, and
// the built-ins and duplicates are rejected at registration.
func TestSchemeRegistry(t *testing.T) {
	dialed, listened := "", ""
	RegisterScheme("fake", Scheme{
		Dial: func(addr string, timeout time.Duration) (FrameTransport, error) {
			dialed = addr
			return &fakeTransport{}, nil
		},
		Listen: func(addr string) (FrameListener, error) {
			listened = addr
			return nil, errors.New("fake listener")
		},
	})

	names := SchemeNames()
	for _, want := range []string{"tcp", "unix", "fake"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("SchemeNames() = %v is missing %q", names, want)
		}
	}

	ft, err := DialFrame("fake://somewhere?x=1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ft.Close()
	if dialed != "somewhere?x=1" {
		t.Fatalf("registered dial saw addr %q, want the spec minus its scheme", dialed)
	}
	if _, err := Listen("fake://elsewhere"); err == nil || listened != "elsewhere" {
		t.Fatalf("registered listen: addr=%q err=%v, want the fake listener error", listened, err)
	}

	mustPanic := func(name string, s Scheme) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("RegisterScheme(%q) must panic", name)
			}
		}()
		RegisterScheme(name, s)
	}
	mustPanic("tcp", Scheme{})  // built-in
	mustPanic("unix", Scheme{}) // built-in
	mustPanic("fake", Scheme{}) // duplicate
}

// TestDialFrameListenErrors sweeps the seam's failure surface: malformed
// specs, unknown schemes (named alongside the known set), and dial/listen
// failures from the built-in socket families.
func TestDialFrameListenErrors(t *testing.T) {
	if _, err := DialFrame("://nope", time.Second); err == nil {
		t.Fatal("malformed spec must fail DialFrame")
	}
	if _, err := Listen("://nope"); err == nil {
		t.Fatal("malformed spec must fail Listen")
	}
	if _, err := DialFrame("bogus://x", time.Second); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("unknown dial scheme: err = %v", err)
	}
	if _, err := Listen("bogus://x"); err == nil || !strings.Contains(err.Error(), "unknown scheme") {
		t.Fatalf("unknown listen scheme: err = %v", err)
	}
	dead := "unix://" + filepath.Join(t.TempDir(), "nobody.sock")
	if _, err := DialFrame(dead, 100*time.Millisecond); err == nil {
		t.Fatal("dial to an unbound socket must fail")
	}
	if _, err := Listen("unix://" + filepath.Join(t.TempDir(), "missing-dir", "x.sock")); err == nil {
		t.Fatal("listen in a missing directory must fail")
	}
}

// TestNetListenerSeam pins the netListener adapter: Addr mirrors the wrapped
// listener and AcceptFrame yields framed conns that carry real frames.
func TestNetListenerSeam(t *testing.T) {
	nl, err := net.Listen("unix", filepath.Join(t.TempDir(), "seam.sock"))
	if err != nil {
		t.Fatal(err)
	}
	l := NewNetListener(nl)
	defer l.Close()
	if l.Addr() != nl.Addr().String() {
		t.Fatalf("Addr() = %q, want %q", l.Addr(), nl.Addr().String())
	}
	go func() {
		c, err := DialFrame("unix://"+nl.Addr().String(), time.Second)
		if err != nil {
			return
		}
		defer c.Close()
		c.WriteFrame(FrameItems, []byte("over the seam"))
	}()
	conn, err := l.AcceptFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	h, p, err := conn.ReadFrame()
	if err != nil || h.Type != FrameItems || string(p) != "over the seam" {
		t.Fatalf("accepted frame: type=%d payload=%q err=%v", h.Type, p, err)
	}
	conn.ReleasePayload(p)
	l.Close()
	if _, err := l.AcceptFrame(); err == nil {
		t.Fatal("AcceptFrame after Close must fail")
	}
}

// TestChecksumFrame pins the byte-exact checksum export: over a real wire
// image it must agree with the header's own Sum, and it must see corruption
// anywhere in the covered prefix — including the reserved bytes Sum cannot
// represent (the shm ring depends on this, found by FuzzShmRingFrame).
func TestChecksumFrame(t *testing.T) {
	p := []byte("raw ring bytes")
	h := FrameHeader{Magic: FrameMagic, Type: FramePacket, Length: uint32(len(p)), Seq: 41}
	img := h.AppendTo(nil)
	if got := ChecksumFrame(img[:FrameCheckOffset], p); got != h.Sum(p) {
		t.Fatalf("ChecksumFrame = %#x, Sum = %#x over the same frame", got, h.Sum(p))
	}
	clean := ChecksumFrame(img[:FrameCheckOffset], p)
	img[7] ^= 1 // reserved byte: invisible to Sum, covered by the wire image
	if ChecksumFrame(img[:FrameCheckOffset], p) == clean {
		t.Fatal("reserved-byte corruption must change the checksum")
	}
}

// TestClientLinkStats pins the pass-through accessor: zero for socket
// transports, the transport's own counters when it reports them.
func TestClientLinkStats(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{} }),
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if ls := cl.LinkStats(); ls != (LinkStats{}) {
		t.Fatalf("socket client LinkStats = %+v, want zero", ls)
	}
	// A client over a stats-reporting transport passes the counters through.
	// Built directly — no reader goroutine — since gen.conn is reader-owned
	// on a live client.
	fc := &Client{gen: newGen(&fakeTransport{
		stats: LinkStats{WriterParks: 3, ReaderParks: 7},
	}, 1, 1)}
	if ls := fc.LinkStats(); ls.WriterParks != 3 || ls.ReaderParks != 7 {
		t.Fatalf("LinkStats = %+v, want the transport's counters", ls)
	}
}
