package transport

import (
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/event"
	"repro/internal/faultnet"
	"repro/internal/wire"
)

// pooledPacket builds an n-event packet on a pooled buffer; SendPacket takes
// ownership and releases it.
func pooledPacket(n int) batch.Packet {
	buf := event.GetBuf(n)
	buf = append(buf, make([]byte, n)...)
	return batch.Packet{Buf: buf, Used: len(buf), Events: n}
}

// TestClientPacketSession drives a clean packet-mode session end to end and
// pins the accessor surface the cosim layer reads its metrics through.
func TestClientPacketSession(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{trapCode: 0x11} }),
		Window:     4,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if cl.Session() == 0 {
		t.Fatal("session id must be non-zero after the handshake")
	}
	if cl.Stalls() != 0 || cl.Reconnects() != 0 || cl.ReplayedFrames() != 0 {
		t.Fatal("fresh client must report zeroed link counters")
	}

	for i := 0; i < 8; i++ {
		stop, err := cl.SendPacket(pooledPacket(48))
		if err != nil {
			t.Fatalf("SendPacket %d: %v", i, err)
		}
		if stop {
			t.Fatalf("clean session stopped early at packet %d", i)
		}
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !v.Finished || v.TrapCode != 0x11 {
		t.Fatalf("verdict = %+v, want finished with trap 0x11", v)
	}
	if cl.Verdict() != nil {
		t.Fatal("clean session must have no early mismatch verdict")
	}
	if cl.Mismatch() != nil {
		t.Fatal("clean session must have no mismatch")
	}
	cl.Close()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts", gets1-gets0, puts1-puts0)
	}
}

// TestClientMismatchAccessor pins the typed diagnosis round trip: the wire
// report must reconstruct to the same checker.Mismatch the accessor hands
// the cosim layer.
func TestClientMismatchAccessor(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: stubSessions(func() *stubChecker { return &stubChecker{mismatchAt: 10} }),
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 50; i++ {
		stop, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{1, 2}}})
		if err != nil {
			t.Fatal(err)
		}
		if stop {
			break
		}
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if v.Mismatch == nil {
		t.Fatal("session must end in a mismatch verdict")
	}
	m := cl.Mismatch()
	if m == nil || m.Seq != v.Mismatch.Seq || m.Detail != v.Mismatch.Detail {
		t.Fatalf("Mismatch() = %+v does not mirror verdict %+v", m, v.Mismatch)
	}
}

func TestParseSpecForms(t *testing.T) {
	good := []struct {
		in           string
		scheme, addr string
	}{
		{"127.0.0.1:8021", "tcp", "127.0.0.1:8021"},   // legacy bare host:port
		{"unix:/tmp/d.sock", "unix", "/tmp/d.sock"},   // legacy PR 4 form
		{"tcp://10.0.0.1:9", "tcp", "10.0.0.1:9"},     // canonical tcp
		{"unix:///tmp/d.sock", "unix", "/tmp/d.sock"}, // canonical unix
		{"shm:///tmp/rings", "shm", "/tmp/rings"},     // shm rendezvous dir
		{"shm:///tmp/rings?ring=65536", "shm", "/tmp/rings?ring=65536"},
	}
	for _, tc := range good {
		sp, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if sp.Scheme != tc.scheme || sp.Addr != tc.addr {
			t.Fatalf("ParseSpec(%q) = %+v, want {%s %s}", tc.in, sp, tc.scheme, tc.addr)
		}
		if got := sp.String(); got != tc.scheme+"://"+tc.addr {
			t.Fatalf("Spec.String() = %q", got)
		}
	}
	for _, bad := range []string{"", "unix:", "://addr", "tcp://"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) must fail", bad)
		}
	}
}

func TestFrameHeaderEncodedSize(t *testing.T) {
	var h FrameHeader
	if h.EncodedSize() != FrameHeaderSize {
		t.Fatalf("EncodedSize() = %d, want %d", h.EncodedSize(), FrameHeaderSize)
	}
}

func TestErrorInfoErrorString(t *testing.T) {
	e := &ErrorInfo{Code: "resume", Msg: "unknown session"}
	s := e.Error()
	if !strings.Contains(s, "resume") || !strings.Contains(s, "unknown session") {
		t.Fatalf("ErrorInfo.Error() = %q must name code and message", s)
	}
}

// TestSetDeadlineNow pins the cancellation hook: after SetDeadlineNow every
// blocking read must fail promptly with a timeout.
func TestSetDeadlineNow(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := NewConn(a)
	c.SetDeadlineNow()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.ReadFrame()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read after SetDeadlineNow must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not unblock after SetDeadlineNow")
	}
	c.Close()
}

// TestParkedSessionReapedAfterWindow pins the reap-vs-resume policy: a
// parked session is resumable only within ResumeWindow; afterwards the next
// park/resume sweep reaps it and a Resume presenting its valid token is
// refused like any unknown session.
func TestParkedSessionReapedAfterWindow(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		ResumeWindow: 40 * time.Millisecond,
		Logf:         t.Logf,
	})

	// Manual handshake so the disconnect timing is ours, not a Client's.
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(nc)
	h := testHello()
	h.Proto = ProtoVersion
	h.WireDigest = event.FormatDigest()
	if err := conn.WriteFrame(FrameHello, encodeJSON(&h)); err != nil {
		t.Fatal(err)
	}
	fh, payload, err := conn.ReadFrame()
	if err != nil || fh.Type != FrameWelcome {
		t.Fatalf("welcome: type=%d err=%v", fh.Type, err)
	}
	var w Welcome
	if err := decodeJSON(fh.Type, payload, &w); err != nil {
		t.Fatal(err)
	}
	releaseBuf(payload)
	if !w.Resumable || w.ResumeToken == 0 {
		t.Fatalf("resume-enabled server sent welcome %+v", w)
	}
	conn.Close() // vanish mid-session: the server parks it

	deadline := time.Now().Add(2 * time.Second)
	for {
		if parked, _ := srv.ResumeStats(); parked > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session was never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("ActiveSessions() = %d after the only connection closed", srv.ActiveSessions())
	}
	time.Sleep(60 * time.Millisecond) // let the resume window lapse

	nc2, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	conn2 := NewConn(nc2)
	r := Resume{Proto: ProtoVersion, Session: w.Session, Token: w.ResumeToken}
	if err := conn2.WriteFrame(FrameResume, encodeJSON(&r)); err != nil {
		t.Fatal(err)
	}
	fh2, payload2, err := conn2.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(payload2)
	var ei ErrorInfo
	if fh2.Type != FrameErrorInfo || decodeJSON(fh2.Type, payload2, &ei) != nil || ei.Code != "resume" {
		t.Fatalf("expired resume answered frame %d %+v, want a resume refusal", fh2.Type, ei)
	}
	if _, _, reaped := srv.Stats(); reaped == 0 {
		t.Fatal("expired parked session was not counted as reaped")
	}
}

// TestServerRefusesWhenAtCapacity pins the overload guard.
func TestServerRefusesWhenAtCapacity(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession:  stubSessions(func() *stubChecker { return &stubChecker{} }),
		MaxSessions: 1,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = Dial(spec, testHello(), ClientConfig{})
	if err == nil {
		t.Fatal("second session must be refused at MaxSessions=1")
	}
	if !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("refusal error %q does not name the overloaded code", err)
	}
}

// TestResumeDeliversLostFinalVerdict pins the completed-session replay: the
// connection dies right after the End frame is delivered, so the server
// finishes the session and writes a Done the client never sees. The resume
// must hand back the final verdict from the parked session instead of
// retransmitting anything.
func TestResumeDeliversLostFinalVerdict(t *testing.T) {
	gets0, puts0 := event.PoolStats()
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{trapCode: 0x2a} }),
		ResumeWindow: time.Minute,
	})
	j := faultnet.NewJournal(8)
	// Write index 6 = Hello + 5 data frames + the End frame; the oversized
	// offset lets the whole End frame through before the close, so the
	// server completes the session while its Done write hits a dead socket.
	dial, dials := faultyFirstDial(faultnet.Plan{
		Seed:   8,
		Script: []faultnet.Op{{Index: 6, Kind: faultnet.Reset, Offset: 1 << 16}},
	}, j)
	cl, err := Dial(spec, testHello(), resumeClientConfig(dial))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}}); err != nil {
			t.Fatalf("send %d: %v\n%s", i, err, j)
		}
	}
	v, err := cl.Finish()
	if err != nil {
		t.Fatalf("finish: %v\n%s", err, j)
	}
	if !v.Finished || v.TrapCode != 0x2a || v.Events != 5 {
		t.Fatalf("replayed final verdict %+v, want finished trap 0x2a over 5 events\n%s", v, j)
	}
	if dials.Load() < 2 {
		t.Fatalf("%d dials: losing the Done frame should have forced a resume\n%s", dials.Load(), j)
	}
	if _, resumed := srv.ResumeStats(); resumed == 0 {
		t.Fatalf("server never counted the resume\n%s", j)
	}
	cl.Close()
	gets1, puts1 := event.PoolStats()
	if gets1-gets0 != puts1-puts0 {
		t.Fatalf("pool imbalance: %d gets vs %d puts\n%s", gets1-gets0, puts1-puts0, j)
	}
}

// TestResumeRefusedAfterReapIsFatal pins the client side of the reap-vs-
// resume policy: when the server has already reaped the parked session, the
// resume refusal is a fact about the session, not the link — the client must
// surface ErrSessionLost immediately instead of burning its retry budget.
func TestResumeRefusedAfterReapIsFatal(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		ResumeWindow: time.Millisecond, // expires long before the first backoff
	})
	j := faultnet.NewJournal(9)
	dial, dials := faultyFirstDial(faultnet.Plan{
		Seed:   9,
		Script: []faultnet.Op{{Index: 3, Kind: faultnet.Reset, Offset: 7}},
	}, j)
	cfg := ClientConfig{
		Resume:      true,
		MaxRetries:  5,
		BackoffBase: 60 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		JitterSeed:  3,
		Dial:        dial,
	}
	cl, err := Dial(spec, testHello(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 30; i++ {
		if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}}); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr == nil {
		_, lastErr = cl.Finish()
	}
	if !errors.Is(lastErr, ErrSessionLost) {
		t.Fatalf("error after reaped resume = %v, want ErrSessionLost\n%s", lastErr, j)
	}
	if got := dials.Load(); got != 2 {
		t.Fatalf("%d dials, want exactly 2: a resume refusal must not be retried\n%s", got, j)
	}
	cl.Close()
}

// TestDialHandshakeErrors drives Dial against a server that misbehaves at
// the handshake: a non-welcome reply, a zero-token grant, and no listener.
func TestDialHandshakeErrors(t *testing.T) {
	spec := "unix:" + filepath.Join(t.TempDir(), "fake.sock")
	l, err := Listen(spec)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	replies := make(chan func(FrameTransport), 2)
	go func() {
		for {
			conn, err := l.AcceptFrame()
			if err != nil {
				return
			}
			go func(conn FrameTransport) {
				defer conn.Close()
				_, p, err := conn.ReadFrame()
				if err != nil {
					return
				}
				conn.ReleasePayload(p)
				(<-replies)(conn)
			}(conn)
		}
	}()

	replies <- func(c FrameTransport) { c.WriteFrame(FrameCredit, encodeJSON(&Credit{Tokens: 1})) }
	if _, err := Dial(spec, testHello(), ClientConfig{}); err == nil || !strings.Contains(err.Error(), "unexpected frame type") {
		t.Fatalf("non-welcome reply: err = %v", err)
	}

	replies <- func(c FrameTransport) {
		c.WriteFrame(FrameWelcome, encodeJSON(&Welcome{
			Proto: ProtoVersion, WireDigest: event.FormatDigest(), Session: 1, Tokens: 0,
		}))
	}
	if _, err := Dial(spec, testHello(), ClientConfig{}); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("zero-token welcome: err = %v", err)
	}

	none := "unix:" + filepath.Join(t.TempDir(), "nobody-home.sock")
	if _, err := Dial(none, testHello(), ClientConfig{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial to a dead address must fail")
	}
}

// expectRefusal sends one raw frame as a brand-new connection's opener and
// returns the server's ErrorInfo refusal.
func expectRefusal(t *testing.T, spec string, typ uint8, payload []byte) ErrorInfo {
	t.Helper()
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	if err := conn.WriteFrame(typ, payload); err != nil {
		t.Fatal(err)
	}
	fh, p, err := conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(p)
	var ei ErrorInfo
	if fh.Type != FrameErrorInfo || decodeJSON(fh.Type, p, &ei) != nil {
		t.Fatalf("expected an ErrorInfo refusal, got frame type %d", fh.Type)
	}
	return ei
}

// TestServerHandshakeRefusals sweeps the malformed-opener space: wrong
// first frame, protocol drift, codec-digest drift, and unparseable resumes
// must each produce a typed refusal naming the right code.
func TestServerHandshakeRefusals(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{} }),
		ResumeWindow: time.Minute,
	})

	if ei := expectRefusal(t, spec, FrameCredit, encodeJSON(&Credit{Tokens: 1})); ei.Code != "handshake" {
		t.Fatalf("wrong opener frame refused with %+v, want code handshake", ei)
	}

	h := testHello()
	h.Proto = 99
	h.WireDigest = event.FormatDigest()
	if ei := expectRefusal(t, spec, FrameHello, encodeJSON(&h)); ei.Code != "handshake" || !strings.Contains(ei.Msg, "protocol version") {
		t.Fatalf("proto drift refused with %+v", ei)
	}

	h = testHello()
	h.Proto = ProtoVersion
	h.WireDigest = 0xdead
	if ei := expectRefusal(t, spec, FrameHello, encodeJSON(&h)); ei.Code != "handshake" || !strings.Contains(ei.Msg, "digest") {
		t.Fatalf("digest drift refused with %+v", ei)
	}

	r := Resume{Proto: 99, Session: 1, Token: 1}
	if ei := expectRefusal(t, spec, FrameResume, encodeJSON(&r)); ei.Code != "resume" {
		t.Fatalf("resume proto drift refused with %+v", ei)
	}

	if ei := expectRefusal(t, spec, FrameResume, []byte("{not json")); ei.Code != "resume" {
		t.Fatalf("garbage resume refused with %+v", ei)
	}

	if ei := expectRefusal(t, spec, FrameHello, []byte("{not json")); ei.Code != "handshake" {
		t.Fatalf("garbage hello refused with %+v", ei)
	}
}

// TestServerRefusesFailedSessionBuild pins the NewSession error path: the
// checker factory's error must reach the client as a handshake refusal.
func TestServerRefusesFailedSessionBuild(t *testing.T) {
	_, spec := startServer(t, ServerConfig{
		NewSession: func(Hello) (SessionChecker, error) {
			return nil, errors.New("no model for this DUT")
		},
	})
	_, err := Dial(spec, testHello(), ClientConfig{})
	var ei *ErrorInfo
	if !errors.As(err, &ei) || ei.Code != "handshake" || !strings.Contains(ei.Msg, "no model") {
		t.Fatalf("failed session build surfaced as %v, want the factory's refusal", err)
	}
}

// TestIdleReapWithoutResume pins the non-resumable idle policy: a server
// with no resume window reaps a silent session and says so on the wire.
func TestIdleReapWithoutResume(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:  stubSessions(func() *stubChecker { return &stubChecker{} }),
		IdleTimeout: 30 * time.Millisecond,
	})
	sp, _ := ParseSpec(spec)
	nc, err := net.Dial(sp.Scheme, sp.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn := NewConn(nc)
	h := testHello()
	h.Proto = ProtoVersion
	h.WireDigest = event.FormatDigest()
	if err := conn.WriteFrame(FrameHello, encodeJSON(&h)); err != nil {
		t.Fatal(err)
	}
	fh, p, err := conn.ReadFrame()
	if err != nil || fh.Type != FrameWelcome {
		t.Fatalf("welcome: type=%d err=%v", fh.Type, err)
	}
	releaseBuf(p)
	// Go silent; the server must reap us with a typed idle error.
	fh, p, err = conn.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	defer releaseBuf(p)
	var ei ErrorInfo
	if fh.Type != FrameErrorInfo || decodeJSON(fh.Type, p, &ei) != nil || ei.Code != "idle" {
		t.Fatalf("idle session answered frame %d %+v, want an idle reap", fh.Type, ei)
	}
	if _, _, reaped := srv.Stats(); reaped == 0 {
		t.Fatal("idle reap was not counted")
	}
}

// TestFrameHeaderSum pins the checksum definition both ends must share:
// Sum, the wire encoding, and the reader's incremental CRC agree.
func TestFrameHeaderSum(t *testing.T) {
	p := []byte("semantic-aware payload bytes")
	h := FrameHeader{Magic: FrameMagic, Type: FrameItems, Length: uint32(len(p)), Seq: 9}
	h.Check = h.Sum(p)
	b := h.AppendTo(nil)
	if got := crc32Frame(b[:frameCheckOffset], p); got != h.Check {
		t.Fatalf("Sum() = %#x but the reader computes %#x", h.Check, got)
	}
	var d FrameHeader
	if _, err := d.DecodeFrom(b); err != nil {
		t.Fatal(err)
	}
	if d.Check != h.Check || d.Sum(p) != h.Check {
		t.Fatalf("decoded header check %#x disagrees with %#x", d.Check, h.Check)
	}
	if h.Sum(nil) == h.Check {
		t.Fatal("payload bytes must participate in the checksum")
	}
}

// TestRedialReplaysCompletedSession pins the lost-Done recovery contract:
// when the link dies after the server finished a session but before the
// client read Done, the next redial must receive ResumeOK.Final from the
// parked completed session and surface it as the final verdict — with no
// retransmission and no live reader on the replacement connection.
func TestRedialReplaysCompletedSession(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{trapCode: 0x2a} }),
		ResumeWindow: time.Minute,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	v, err := cl.Finish()
	if err != nil || !v.Finished {
		t.Fatalf("Finish = %+v, %v", v, err)
	}

	// Simulate the Done frame having been lost on the wire: forget the final
	// verdict and resume. The server still holds the completed session parked
	// for ResumeWindow exactly so this redial can replay it.
	cl.mu.Lock()
	cl.final = nil
	cl.mu.Unlock()
	g, err := cl.redial()
	if err != nil {
		t.Fatalf("redial against completed session: %v", err)
	}
	select {
	case <-g.exited:
	default:
		t.Fatal("completed-session replay must return a generation with no live reader")
	}
	g.conn.Close()
	cl.mu.Lock()
	fin := cl.final
	cl.mu.Unlock()
	if fin == nil || !fin.Finished || fin.TrapCode != 0x2a || fin.Events != 3 {
		t.Fatalf("replayed final verdict = %+v, want finished trap 0x2a with 3 events", fin)
	}
	if _, resumed := srv.ResumeStats(); resumed == 0 {
		t.Fatal("server must count the completed-session replay as a resume")
	}
}

// TestRedialReplaysEarlyVerdict pins the other half of the replay contract:
// a session that mismatched early (verdict written, End not yet sent) and
// then lost its link must hand the mismatch verdict back in ResumeOK so the
// client stops producing even if the original Verdict frame was lost.
func TestRedialReplaysEarlyVerdict(t *testing.T) {
	srv, spec := startServer(t, ServerConfig{
		NewSession:   stubSessions(func() *stubChecker { return &stubChecker{mismatchAt: 2} }),
		ResumeWindow: time.Minute,
	})
	cl, err := Dial(spec, testHello(), ClientConfig{Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.SendItems([]wire.Item{{Type: 0, Payload: []byte{byte(i)}}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for cl.Mismatch() == nil {
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the early mismatch verdict")
		}
		time.Sleep(time.Millisecond)
	}

	// Sever the link mid-session and wait for the server to park.
	cl.gen.conn.Close()
	for {
		if parked, _ := srv.ResumeStats(); parked > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the server to park the session")
		}
		time.Sleep(time.Millisecond)
	}

	// Simulate the Verdict frame having been lost: forget it and redial.
	cl.mu.Lock()
	cl.verdict = nil
	cl.mu.Unlock()
	cl.stopped.Store(false)
	g, err := cl.redial()
	if err != nil {
		t.Fatalf("redial against mismatched session: %v", err)
	}
	cl.gen = g
	m := cl.Mismatch()
	if m == nil || m.Seq != 2 {
		t.Fatalf("replayed verdict mismatch = %+v, want seq 2", m)
	}
	if !cl.stopped.Load() {
		t.Fatal("a replayed mismatch verdict must stop production")
	}
}
