package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// FrameTransport is the seam every frame producer and consumer programs
// against: the socket-backed Conn, the shared-memory ring
// (internal/transport/shmring), and any future link all present the same
// contract, so the client, the server, difftestd, and cosim's remote mode
// never see a net.Conn.
//
// Ownership contract: WriteFrame does not retain payload. ReadFrame returns
// a payload the transport owns the lifecycle of — release it with
// ReleasePayload on the same transport once consumed, before the next
// ReadFrame on transports that recycle slots in order (the shm ring does;
// socket transports merely return the buffer to the pool). A nil payload
// (zero-length frame) needs no release.
type FrameTransport interface {
	// WriteFrame sends one frame; payload is not retained.
	WriteFrame(typ uint8, payload []byte) error
	// ReadFrame reads one frame. Error contract: bare io.EOF only when the
	// peer closed cleanly at a frame boundary; everything else is a typed
	// *FrameError.
	ReadFrame() (FrameHeader, []byte, error)
	// ReleasePayload returns a ReadFrame payload to its owner: the buffer
	// pool for socket transports, the ring slot for shm. nil is a no-op.
	ReleasePayload(buf []byte)
	// SetReadTimeout bounds one blocking ReadFrame (0 = no deadline).
	SetReadTimeout(d time.Duration)
	// SetWriteTimeout bounds one WriteFrame flush (0 = no deadline).
	SetWriteTimeout(d time.Duration)
	// SetDeadlineNow interrupts any blocked read or write; the server's
	// forced-drain path uses it.
	SetDeadlineNow()
	// RemoteAddr reports the peer address for logging.
	RemoteAddr() string
	// Close tears the transport down; blocked peers observe EOF or an error.
	Close() error
}

// LinkStats is optional transport-level instrumentation: transports that
// wait by spinning-then-parking (the shm ring) report how often each side
// had to park. Socket transports block in the kernel and report nothing.
type LinkStats struct {
	// WriterParks counts WriteFrame waits that outlasted the spin phase
	// (ring full: the consumer is the bottleneck).
	WriterParks uint64
	// ReaderParks counts ReadFrame waits that outlasted the spin phase
	// (ring empty: the producer is the bottleneck).
	ReaderParks uint64
}

// StatsReporter is implemented by transports that carry LinkStats.
type StatsReporter interface {
	LinkStats() LinkStats
}

// FrameListener accepts inbound FrameTransports: the server side of the
// seam. transport.Listen resolves an address spec to the right
// implementation.
type FrameListener interface {
	// AcceptFrame blocks for the next inbound transport.
	AcceptFrame() (FrameTransport, error)
	// Addr reports the bound address for logging.
	Addr() string
	// Close stops accepting; a blocked AcceptFrame returns an error.
	Close() error
}

// netListener adapts a net.Listener to the FrameListener seam, wrapping each
// accepted connection in a framed Conn.
type netListener struct {
	l net.Listener
}

// NewNetListener wraps an existing net.Listener (including fault-injection
// wrappers like faultnet.Listener) as a FrameListener.
func NewNetListener(l net.Listener) FrameListener { return &netListener{l: l} }

func (n *netListener) AcceptFrame() (FrameTransport, error) {
	nc, err := n.l.Accept()
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

func (n *netListener) Addr() string { return n.l.Addr().String() }
func (n *netListener) Close() error { return n.l.Close() }

// Scheme is one registered transport family: how to dial a client transport
// and how to open a listener for its address form.
type Scheme struct {
	// Dial connects to addr (the spec with the "<scheme>://" prefix
	// stripped) within timeout.
	Dial func(addr string, timeout time.Duration) (FrameTransport, error)
	// Listen binds addr for inbound transports.
	Listen func(addr string) (FrameListener, error)
}

var (
	schemeMu sync.RWMutex
	schemes  = make(map[string]Scheme)
)

// RegisterScheme installs a transport family under a spec scheme (e.g.
// "shm"); shmring registers itself in an init so importing it is enough.
// tcp and unix are built in and cannot be replaced.
func RegisterScheme(name string, s Scheme) {
	if name == "tcp" || name == "unix" {
		panic(fmt.Sprintf("transport: scheme %q is built in", name))
	}
	schemeMu.Lock()
	defer schemeMu.Unlock()
	if _, dup := schemes[name]; dup {
		panic(fmt.Sprintf("transport: scheme %q registered twice", name))
	}
	schemes[name] = s
}

// registeredScheme looks a non-builtin scheme up.
func registeredScheme(name string) (Scheme, bool) {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	s, ok := schemes[name]
	return s, ok
}

// SchemeNames lists the dialable schemes (built-ins plus registered), for
// error messages and -list style output.
func SchemeNames() []string {
	schemeMu.RLock()
	defer schemeMu.RUnlock()
	names := []string{"tcp", "unix"}
	for n := range schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DialFrame resolves an address spec (see ParseSpec) and connects the
// matching transport: tcp and unix produce a framed socket Conn; registered
// schemes (shm) produce their own FrameTransport.
func DialFrame(spec string, timeout time.Duration) (FrameTransport, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if s, ok := registeredScheme(sp.Scheme); ok {
		return s.Dial(sp.Addr, timeout)
	}
	switch sp.Scheme {
	case "tcp", "unix":
		nc, err := net.DialTimeout(sp.Scheme, sp.Addr, timeout)
		if err != nil {
			return nil, err
		}
		return NewConn(nc), nil
	}
	return nil, fmt.Errorf("transport: unknown scheme %q in %q (have %v)", sp.Scheme, spec, SchemeNames())
}

// Listen opens a FrameListener for an address spec (see ParseSpec).
func Listen(spec string) (FrameListener, error) {
	sp, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	if s, ok := registeredScheme(sp.Scheme); ok {
		return s.Listen(sp.Addr)
	}
	switch sp.Scheme {
	case "tcp", "unix":
		l, err := net.Listen(sp.Scheme, sp.Addr)
		if err != nil {
			return nil, err
		}
		return NewNetListener(l), nil
	}
	return nil, fmt.Errorf("transport: unknown scheme %q in %q (have %v)", sp.Scheme, spec, SchemeNames())
}
