// Command bughunt regenerates the bug-finding evaluation: Figure 14 (bug
// detection time, Verilator vs DiffTest-H) and Table 6 (the bug inventory).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instrs", experiments.DefaultInstrs, "dynamic instructions per run")
	inventory := flag.Bool("inventory", false, "print only the bug inventory (Table 6)")
	flag.Parse()

	if *inventory {
		fmt.Println(experiments.Table6())
		return
	}
	fmt.Println(experiments.Figure14(*instrs))
	fmt.Println(experiments.Table6())
}
