// Command difftest runs one hardware-accelerated co-simulation: a DUT on a
// modeled acceleration platform, checked instruction-by-instruction against
// the reference model, with the selected communication optimizations.
//
// Usage:
//
//	difftest -dut xiangshan -platform palladium -config EBINSD -workload linux
//	difftest -bug load-sign-extension -config EBINSD   # inject and detect a bug
//	difftest -executed                                 # modeled vs executed pipeline
//	difftest -remote unix:/tmp/difftestd.sock          # check on a difftestd server
//	difftest -remote shm:///dev/shm/difftest           # same host, shared-memory ring
//	difftest -transport shm -remote /dev/shm/difftest  # same, platform-sized rings
//	difftest -executed -shm                            # comparison incl. in-process shm row
//	difftest -list                                     # show available options
//
// SIGINT/SIGTERM cancel the run cooperatively: the co-simulation loop drains
// its in-flight pooled buffers through the normal release paths before the
// process exits, so an interrupted run still reports a balanced buffer pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/workload"
)

func main() {
	var (
		dutName  = flag.String("dut", "xiangshan", "DUT: nutshell, xiangshan-minimal, xiangshan, xiangshan-dual")
		platName = flag.String("platform", "palladium", "platform: palladium, fpga, verilator")
		cfgName  = flag.String("config", "EBINSD", "optimizations: Z, EB, EBIN, EBINSD")
		wlName   = flag.String("workload", "linux", "workload: linux, microbench, spec, kvm, xvisor, rvv_test")
		instrs   = flag.Uint64("instrs", 200_000, "target dynamic instructions")
		seed     = flag.Int64("seed", 7, "workload generation seed")
		bugID    = flag.String("bug", "", "inject a bug from the library (see -list)")
		threads  = flag.Int("threads", 16, "verilator host threads")
		executed = flag.Bool("executed", false,
			"run every configuration through both the analytic model and the executed concurrent pipeline and report speedup deltas")
		remote = flag.String("remote", "",
			"stream the hardware side to a difftestd server at this address (tcp://host:port, unix:///path, shm:///dir, or the legacy host:port / unix:<path> forms); with -executed, adds a networked column to the comparison")
		transportName = flag.String("transport", "",
			"force the -remote transport scheme (tcp, unix, shm): the -remote value is taken as a bare address — host:port for tcp, a path for unix, a rendezvous directory for shm; shm sizes its rings from the platform operating point")
		shm = flag.Bool("shm", false,
			"with -executed: run each configuration a further time against an in-process difftestd over the shared-memory ring transport, adding Shm wall/speedup/ring-parks columns to the comparison")
		resume = flag.Bool("resume", false,
			"with -remote: resume the session over reconnects instead of failing on the first connection loss (needs difftestd -resume-window)")
		retries = flag.Int("retries", 0,
			"with -remote -resume: reconnect attempts per disconnect before degrading to in-process checking (0 = transport default)")
		backoff = flag.Duration("backoff", 0,
			"with -remote -resume: first reconnect delay, doubled per retry and jittered ±50% (0 = transport default)")
		backoffMax = flag.Duration("backoff-max", 0,
			"with -remote -resume: cap on the reconnect delay (0 = transport default)")
		stall = flag.Duration("stall", 0,
			"with -remote: declare a silently hung connection dead after this long without progress (0 = wait forever)")
		autotune = flag.Bool("autotune", false,
			"steer QueueDepth, PacketBytes, and the token window with the AIMD controller instead of the fixed platform constants; with -executed, sweeps EB/EBIN/EBINSD and prints a fixed-vs-tuned table")
		tuneRounds = flag.Int("tune-rounds", 4, "with -autotune: tuning rounds per configuration")
		verbose    = flag.Bool("v", false, "print communication counters")
		list       = flag.Bool("list", false, "list DUTs, workloads, and bugs")
	)
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	if *list {
		printOptions()
		return
	}

	d, err := pickDUT(*dutName)
	exitOn(err)
	p, err := pickPlatform(*platName, *threads)
	exitOn(err)
	o, err := cosim.ParseConfig(*cfgName)
	exitOn(err)
	wl, ok := workload.ByName(*wlName)
	if !ok {
		exitOn(fmt.Errorf("unknown workload %q", *wlName))
	}
	wl.TargetInstrs = *instrs

	var hooks arch.Hooks
	var freshHooks func() arch.Hooks
	if *bugID != "" {
		b, ok := bugs.ByID(*bugID)
		if !ok {
			exitOn(fmt.Errorf("unknown bug %q", *bugID))
		}
		hooks = b.Hooks(0)
		freshHooks = func() arch.Hooks { return b.Hooks(0) }
		fmt.Printf("injecting %s (%s): %s\n", b.ID, b.PR, b.Description)
	}

	remoteSpec, err := resolveRemoteSpec(*remote, *transportName, p)
	exitOn(err)
	if *shm && !*executed {
		exitOn(fmt.Errorf("-shm extends the -executed comparison; add -executed (or point -remote at a difftestd listening on shm://...)"))
	}

	remoteCfg := transport.ClientConfig{
		Resume:       *resume,
		MaxRetries:   *retries,
		BackoffBase:  *backoff,
		BackoffMax:   *backoffMax,
		StallTimeout: *stall,
	}

	if *executed {
		cmp, err := cosim.CompareModes(cosim.Params{
			DUT: d, Platform: p, Opt: o, Workload: wl, Seed: *seed, Hooks: hooks,
			Ctx: ctx, RemoteAddr: remoteSpec, RemoteCfg: remoteCfg, ShmLoopback: *shm,
		}, freshHooks)
		exitOn(err)
		printComparison(cmp)
		if *autotune {
			if *bugID != "" {
				exitOn(fmt.Errorf("-autotune needs a clean workload, not -bug"))
			}
			reps, err := cosim.AutoTuneSweep(cosim.Params{
				DUT: d, Platform: p, Opt: o, Workload: wl, Seed: *seed,
				Ctx: ctx, RemoteAddr: remoteSpec, RemoteCfg: remoteCfg,
			}, *tuneRounds, nil)
			exitOn(err)
			fmt.Println()
			printAutotune(reps, *verbose)
		}
		for _, row := range cmp.Rows {
			if row.Modeled.Mismatch != nil || row.Executed.Mismatch != nil ||
				(row.Remote != nil && row.Remote.Mismatch != nil) ||
				(row.Shm != nil && row.Shm.Mismatch != nil) {
				os.Exit(2)
			}
		}
		return
	}

	if *autotune {
		if *bugID != "" {
			exitOn(fmt.Errorf("-autotune needs a clean workload, not -bug"))
		}
		rep, err := cosim.AutoTune(cosim.Params{
			DUT: d, Platform: p, Opt: o, Workload: wl, Seed: *seed,
			Ctx: ctx, RemoteAddr: remoteSpec, RemoteCfg: remoteCfg,
		}, *tuneRounds)
		exitOn(err)
		printAutotune([]*cosim.AutoTuneReport{rep}, true)
		return
	}

	res, err := cosim.Run(cosim.Params{
		DUT: d, Platform: p, Opt: o, Workload: wl, Seed: *seed, Hooks: hooks,
		Ctx: ctx, RemoteAddr: remoteSpec, RemoteCfg: remoteCfg,
	})
	exitOn(err)

	fmt.Println(res.Summary())
	fmt.Printf("Simulation speed: %.2f KHz\n", res.SpeedHz/1e3)
	if res.Replay != nil {
		fmt.Println(res.Replay)
	}
	if *verbose {
		fmt.Printf("\ncommunication: %d invokes, %d wire bytes, %.3g s software\n",
			res.Invokes, res.WireBytes, res.SWSeconds)
		fmt.Printf("monitor: %.1f events/cycle, %.0f bytes/cycle, %.0f bytes/instr\n",
			res.EventsPerCycle, res.BytesPerCycle, res.BytesPerInstr)
		fmt.Printf("comm overhead share: %.2f%%  breakdown: %v\n",
			res.CommOverheadShare*100, res.Breakdown)
		if res.Fusion.Windows > 0 {
			fmt.Printf("squash: fusion ratio %.1f (%d windows, %d NDEs ahead, %d diffs)\n",
				res.Fusion.FusionRatio(), res.Fusion.Windows, res.Fusion.NDEsAhead, res.Fusion.Diffs)
		}
		if res.PacketUtilation > 0 {
			fmt.Printf("batch: packet utilization %.2f\n", res.PacketUtilation)
		}
	}
	if *remote != "" && res.Exec != nil {
		fmt.Printf("remote: wall %s, backpressure %d, token stalls %d\n",
			res.Exec.Wall.Round(time.Microsecond), res.Exec.Backpressure, res.Exec.TokenStalls)
		if res.Exec.RingParks > 0 {
			fmt.Printf("remote link: %d ring park(s) (shared-memory spin budget exhaustions)\n",
				res.Exec.RingParks)
		}
		if res.Exec.Reconnects > 0 || res.Exec.ReplayedFrames > 0 || res.Degraded {
			fmt.Printf("remote link: %d reconnect(s), %d replayed frame(s), degraded=%v\n",
				res.Exec.Reconnects, res.Exec.ReplayedFrames, res.Degraded)
		}
	}
	if res.Mismatch != nil {
		os.Exit(2)
	}
}

// resolveRemoteSpec folds the -transport override into the -remote address:
// with -transport set, the -remote value is a bare address the scheme is
// prefixed onto, and an shm spec with no explicit ?ring= option inherits the
// platform operating point's ring size.
func resolveRemoteSpec(remote, scheme string, p platform.Platform) (string, error) {
	if scheme == "" {
		return remote, nil
	}
	if remote == "" {
		return "", fmt.Errorf("-transport %s needs -remote with an address", scheme)
	}
	switch scheme {
	case "tcp", "unix", "shm":
	default:
		return "", fmt.Errorf("unknown -transport %q (tcp, unix, shm)", scheme)
	}
	spec := scheme + "://" + remote
	if scheme == "shm" && !strings.Contains(remote, "?ring=") && p.ShmRingBytes > 0 {
		spec = fmt.Sprintf("%s?ring=%d", spec, p.ShmRingBytes)
	}
	return spec, nil
}

func pickDUT(name string) (dut.Config, error) {
	switch strings.ToLower(name) {
	case "nutshell":
		return dut.NutShell(), nil
	case "xiangshan-minimal", "minimal":
		return dut.XiangShanMinimal(), nil
	case "xiangshan", "default":
		return dut.XiangShanDefault(), nil
	case "xiangshan-dual", "dual":
		return dut.XiangShanDefaultDual(), nil
	}
	return dut.Config{}, fmt.Errorf("unknown DUT %q", name)
}

func pickPlatform(name string, threads int) (platform.Platform, error) {
	switch strings.ToLower(name) {
	case "palladium", "pldm", "emulator":
		return platform.Palladium(), nil
	case "fpga", "vu19p":
		return platform.FPGA(), nil
	case "verilator", "rtl":
		return platform.Verilator(threads), nil
	}
	return platform.Platform{}, fmt.Errorf("unknown platform %q", name)
}

// printComparison renders the modeled-vs-executed table: the analytic model
// predicts speedups from the platform cost model; the executed pipeline
// measures how much wall-clock overlap the concurrency achieves on this
// host. When the comparison ran against a difftestd server, a third group of
// columns reports the networked run: wall clock, speedup over the networked
// baseline, and token-window stalls (the credit window filling up — the
// networked analogue of local backpressure).
func printComparison(cmp *cosim.ModeComparison) {
	remote := len(cmp.Rows) > 0 && cmp.Rows[0].Remote != nil
	shm := len(cmp.Rows) > 0 && cmp.Rows[0].Shm != nil
	switch {
	case remote && shm:
		fmt.Println("Modeled (analytic) vs executed (concurrent pipeline) vs remote (difftestd) vs shm (shared-memory ring):")
	case remote:
		fmt.Println("Modeled (analytic) vs executed (concurrent pipeline) vs remote (difftestd):")
	case shm:
		fmt.Println("Modeled (analytic) vs executed (concurrent pipeline) vs shm (shared-memory ring):")
	default:
		fmt.Println("Modeled (analytic) vs executed (concurrent pipeline):")
	}
	header := []string{"Config", "Modeled speed", "Modeled speedup",
		"Executed wall", "Executed speedup", "Overlap", "Backpressure"}
	if remote {
		header = append(header, "Remote wall", "Remote speedup", "Token stalls")
	}
	if shm {
		header = append(header, "Shm wall", "Shm speedup", "Ring parks")
	}
	header = append(header, "Verdict")
	var rows [][]string
	anyDegraded := false
	for i, row := range cmp.Rows {
		ex := row.Executed.Exec
		verdict := "clean"
		if row.Executed.Mismatch != nil {
			verdict = "mismatch"
		}
		cells := []string{
			row.Config,
			fmt.Sprintf("%.1f KHz", row.Modeled.SpeedHz/1e3),
			fmt.Sprintf("%.2fx", cmp.ModeledSpeedup(i)),
			ex.Wall.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", cmp.ExecutedSpeedup(i)),
			fmt.Sprintf("%.0f%%", ex.OverlapShare()*100),
			fmt.Sprint(ex.Backpressure),
		}
		if remote {
			rx := row.Remote.Exec
			wall := rx.Wall.Round(time.Microsecond).String()
			speedup := fmt.Sprintf("%.2fx", cmp.RemoteSpeedup(i))
			if row.Remote.Degraded {
				// The session outlived its retry budget; the verdict comes
				// from the in-process rerun, so no networked numbers exist.
				wall, speedup = "degraded", "-"
				anyDegraded = true
			}
			cells = append(cells, wall, speedup, fmt.Sprint(rx.TokenStalls))
			if row.Remote.Mismatch != nil {
				verdict = "mismatch"
			}
		}
		if shm {
			sx := row.Shm.Exec
			cells = append(cells,
				sx.Wall.Round(time.Microsecond).String(),
				fmt.Sprintf("%.2fx", cmp.ShmSpeedup(i)),
				fmt.Sprint(sx.RingParks))
			if row.Shm.Mismatch != nil {
				verdict = "mismatch"
			}
		}
		rows = append(rows, append(cells, verdict))
	}
	fmt.Print(stats.Table(header, rows))
	fmt.Println("note: modeled speedups come from the platform cost model (simulated time);")
	fmt.Println("      executed speedups are measured wall clock and depend on host cores")
	if remote {
		fmt.Println("      remote speedups include real socket framing and the server's token window")
	}
	if shm {
		fmt.Println("      shm rows stream the same protocol over the zero-syscall shared-memory ring;")
		fmt.Println("      ring parks count spin-budget exhaustions (the ring-level analogue of stalls)")
	}
	if anyDegraded {
		fmt.Println("      'degraded' rows lost their difftestd session beyond the retry budget;")
		fmt.Println("      their verdicts come from the in-process rerun and are still authoritative")
	}
}

// printAutotune renders the fixed-vs-tuned comparison: each configuration's
// throughput under the platform constants (round 0) against the best the
// AIMD controller found, with the winning knobs. Round 0 is always a
// candidate for best, so Gain never drops below 1.00x. With decisions set,
// every controller step is listed underneath — the same trajectory
// cmd/breakdown surfaces in its occupancy report.
func printAutotune(reps []*cosim.AutoTuneReport, decisions bool) {
	fmt.Println("Auto-tuned pipeline settings (fixed constants vs AIMD controller):")
	header := []string{"Config", "Fixed instrs/s", "Tuned instrs/s", "Gain",
		"Best knobs", "Best round", "Rounds"}
	var rows [][]string
	for _, rep := range reps {
		rows = append(rows, []string{
			rep.Config,
			fmt.Sprintf("%.0f", rep.FixedScore()),
			fmt.Sprintf("%.0f", rep.BestScore),
			fmt.Sprintf("%.2fx", rep.Gain()),
			rep.Best.String(),
			fmt.Sprint(rep.BestRound),
			fmt.Sprint(len(rep.Rounds)),
		})
	}
	fmt.Print(stats.Table(header, rows))
	fmt.Println("note: round 0 measures the fixed platform constants, so tuned ≥ fixed by construction;")
	fmt.Println("      scores are executed wall-clock instrs/s and vary with host load")
	if decisions {
		for _, rep := range reps {
			fmt.Printf("\n%s controller trajectory:\n", rep.Config)
			for _, r := range rep.Rounds {
				fmt.Printf("  %s  [%.0f instrs/s]\n", r.Decision, r.Score)
			}
		}
	}
}

func printOptions() {
	fmt.Println("DUTs:")
	for _, d := range dut.Configs() {
		fmt.Printf("  %-28s %5.1fM gates, %d-wide, %d core(s), %d event types\n",
			d.Name, d.GatesM, d.CommitWidth, d.Cores, d.NumEventKinds())
	}
	fmt.Println("\nWorkloads:")
	for _, w := range workload.Profiles() {
		fmt.Printf("  %-12s MMIO %d‰, ecall %d‰, timer %d\n",
			w.Name, w.MMIOPerMille, w.EcallPerMille, w.TimerInterval)
	}
	fmt.Println("\nBugs:")
	for _, b := range bugs.Library() {
		fmt.Printf("  %s\n", b)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftest:", err)
		os.Exit(1)
	}
}
