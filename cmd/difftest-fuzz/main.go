// Command difftest-fuzz drives the coverage-guided workload fuzzer: budgeted
// campaigns over the (profile, seed) mutation space with the checker's
// semantic coverage counters as feedback, corpus checkpointing to JSON, and
// replay of findings.
//
// Usage:
//
//	difftest-fuzz campaign -workload linux -runs 200 -corpus corpus.json
//	difftest-fuzz campaign -corpus corpus.json -resume -runs 400   # continue
//	difftest-fuzz campaign -bug sc-false-success -threshold 4      # rediscovery drill
//	difftest-fuzz campaign -random ...                             # control arm (no guidance)
//	difftest-fuzz campaign -remote tcp://fleet:9000 -tenant ci ... # fan out to a fleet
//	difftest-fuzz min -corpus corpus.json                          # greedy corpus minimization
//	difftest-fuzz repro -corpus corpus.json -entry 3               # replay a corpus entry
//	difftest-fuzz repro -corpus corpus.json -finding 0             # replay a mismatch finding
//
// Exit status: 1 on usage or environment errors, 2 when a campaign or replay
// surfaced a mismatch (the bug-hunting "success" exit, mirroring difftest).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/arch"
	"repro/internal/bugs"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/fuzz"
	"repro/internal/platform"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(1)
	}
	switch os.Args[1] {
	case "campaign":
		runCampaign(os.Args[2:])
	case "min":
		runMin(os.Args[2:])
	case "repro":
		runRepro(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "difftest-fuzz: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: difftest-fuzz <campaign|min|repro> [flags]

campaign  run a budgeted coverage-guided campaign (checkpoint to -corpus)
min       greedily minimize a corpus checkpoint in place
repro     replay one corpus entry or finding to a verdict

Run 'difftest-fuzz <subcommand> -h' for flags.`)
}

// envFlags is the DUT/platform/config/remote flag block shared by campaign
// and repro.
type envFlags struct {
	dutName, platName, cfgName    string
	threads                       int
	remote, transportName, tenant string
	bugID                         string
	threshold                     int
}

func addEnvFlags(fs *flag.FlagSet) *envFlags {
	e := &envFlags{}
	fs.StringVar(&e.dutName, "dut", "xiangshan", "DUT: nutshell, xiangshan-minimal, xiangshan, xiangshan-dual")
	fs.StringVar(&e.platName, "platform", "palladium", "platform: palladium, fpga, verilator")
	fs.StringVar(&e.cfgName, "config", "EBINSD", "optimizations: Z, EB, EBIN, EBINSD")
	fs.IntVar(&e.threads, "threads", 16, "verilator host threads")
	fs.StringVar(&e.remote, "remote", "",
		"evaluate candidates on a difftestd shard or fleet router at this address (tcp://host:port, unix:///path, shm:///dir)")
	fs.StringVar(&e.transportName, "transport", "",
		"force the -remote transport scheme (tcp, unix, shm); -remote is then a bare address")
	fs.StringVar(&e.tenant, "tenant", "", "accounting principal for routed campaigns")
	fs.StringVar(&e.bugID, "bug", "", "inject a library bug into every evaluation (rediscovery drills)")
	fs.IntVar(&e.threshold, "threshold", 0, "bug trigger threshold (0 = library default)")
	return e
}

// environment resolves the shared flags into a fuzz.Config skeleton.
func (e *envFlags) environment() (fuzz.Config, error) {
	var cfg fuzz.Config
	d, err := pickDUT(e.dutName)
	if err != nil {
		return cfg, err
	}
	p, err := pickPlatform(e.platName, e.threads)
	if err != nil {
		return cfg, err
	}
	o, err := cosim.ParseConfig(e.cfgName)
	if err != nil {
		return cfg, err
	}
	cfg.DUT, cfg.Platform, cfg.Opt = d, p, o
	cfg.RemoteAddr, err = resolveRemoteSpec(e.remote, e.transportName, p)
	if err != nil {
		return cfg, err
	}
	cfg.Tenant = e.tenant
	if e.bugID != "" {
		b, ok := bugs.ByID(e.bugID)
		if !ok {
			return cfg, fmt.Errorf("unknown bug %q", e.bugID)
		}
		th := e.threshold
		cfg.Hooks = func() arch.Hooks { return b.Hooks(th) }
		fmt.Printf("injecting %s (%s): %s\n", b.ID, b.PR, b.Description)
	}
	return cfg, nil
}

func runCampaign(args []string) {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	env := addEnvFlags(fs)
	var (
		wlName = fs.String("workload", "linux", "base profile: linux, microbench, spec, kvm, xvisor, rvv_test")
		instrs = fs.Uint64("instrs", 3000, "dynamic instruction budget per evaluation")
		seed   = fs.Int64("seed", 1, "campaign seed (equal seeds replay equal campaigns)")
		batch  = fs.Int("batch", 8, "candidates per generation")
		work   = fs.Int("workers", 0, "parallel evaluations (0 = host cores); never changes the outcome")
		runs   = fs.Int("runs", 200, "run budget (0 = unbounded)")
		maxIn  = fs.Uint64("max-instrs", 0, "total dynamic-instruction budget (0 = unbounded)")
		wall   = fs.Duration("wall", 0, "wall-clock budget, checked at round boundaries (0 = unbounded; breaks replay)")
		cycles = fs.Uint64("max-cycles", 0, "per-evaluation cycle bound (0 = derived from -instrs)")
		stop   = fs.Bool("stop-on-mismatch", false, "end the campaign at the first diverging run")
		random = fs.Bool("random", false, "control arm: random sampling, no coverage guidance")
		corpus = fs.String("corpus", "", "corpus checkpoint file (written at campaign end)")
		resume = fs.Bool("resume", false, "continue from the -corpus checkpoint instead of a cold corpus")
	)
	fs.Parse(args)

	cfg, err := env.environment()
	exitOn(err)
	wl, ok := workload.ByName(*wlName)
	if !ok {
		exitOn(fmt.Errorf("unknown workload %q", *wlName))
	}
	cfg.Base = wl
	cfg.Seed = *seed
	cfg.TargetInstrs = *instrs
	cfg.BatchSize, cfg.Workers = *batch, *work
	cfg.MaxRuns, cfg.MaxInstrs, cfg.WallBudget = *runs, *maxIn, *wall
	cfg.MaxCycles = *cycles
	cfg.StopOnMismatch = *stop
	cfg.Random = *random
	cfg.Log = func(format string, a ...any) { fmt.Printf(format+"\n", a...) }

	var ck *fuzz.Checkpoint
	if *resume {
		if *corpus == "" {
			exitOn(fmt.Errorf("-resume needs -corpus"))
		}
		data, err := os.ReadFile(*corpus)
		exitOn(err)
		if ck, _, err = fuzz.LoadCheckpoint(data); err != nil {
			exitOn(err)
		}
		if ck.Seed != *seed {
			exitOn(fmt.Errorf("checkpoint was grown under seed %d, not %d (pass -seed %d)",
				ck.Seed, *seed, ck.Seed))
		}
		fmt.Printf("resuming: %d rounds, %d runs, %d corpus entries, %d features\n",
			ck.Rounds, ck.Runs, len(ck.Entries), len(ck.Seen))
	}

	start := time.Now()
	rep, err := fuzz.Campaign(cfg, ck)
	exitOn(err)

	fmt.Printf("\ncampaign stopped (%s): %d rounds, %d runs (%d hung), %d instrs, %s wall\n",
		rep.Stopped, rep.Rounds, rep.Runs, rep.Hung, rep.Instrs, time.Since(start).Round(time.Millisecond))
	fmt.Printf("corpus: %d entries, %d distinct features\n", len(rep.Corpus.Entries), rep.Corpus.Features())
	for _, f := range rep.Findings {
		fmt.Printf("finding (round %d, seed %d): %v\n", f.Round, f.Seed, f.Mismatch)
	}
	if *corpus != "" {
		exitOn(os.WriteFile(*corpus, rep.Checkpoint(cfg.Seed).Marshal(), 0o644))
		fmt.Printf("checkpoint written to %s\n", *corpus)
	}
	if len(rep.Findings) > 0 {
		os.Exit(2)
	}
}

func runMin(args []string) {
	fs := flag.NewFlagSet("min", flag.ExitOnError)
	corpus := fs.String("corpus", "", "corpus checkpoint file to minimize")
	out := fs.String("o", "", "output file (default: overwrite -corpus)")
	fs.Parse(args)
	if *corpus == "" {
		exitOn(fmt.Errorf("min needs -corpus"))
	}
	data, err := os.ReadFile(*corpus)
	exitOn(err)
	ck, c, err := fuzz.LoadCheckpoint(data)
	exitOn(err)
	m := c.Minimize()
	fmt.Printf("minimized: %d -> %d entries (%d features)\n", len(c.Entries), len(m.Entries), m.Features())
	ck.Entries = m.Entries
	dst := *out
	if dst == "" {
		dst = *corpus
	}
	exitOn(os.WriteFile(dst, ck.Marshal(), 0o644))
}

func runRepro(args []string) {
	fs := flag.NewFlagSet("repro", flag.ExitOnError)
	env := addEnvFlags(fs)
	var (
		corpus  = fs.String("corpus", "", "corpus checkpoint file")
		entry   = fs.Int("entry", -1, "corpus entry ID to replay")
		finding = fs.Int("finding", -1, "finding index to replay")
	)
	fs.Parse(args)
	if *corpus == "" || (*entry < 0) == (*finding < 0) {
		exitOn(fmt.Errorf("repro needs -corpus and exactly one of -entry or -finding"))
	}
	data, err := os.ReadFile(*corpus)
	exitOn(err)
	ck, c, err := fuzz.LoadCheckpoint(data)
	exitOn(err)

	var prof workload.Profile
	var seed int64
	switch {
	case *entry >= 0:
		if *entry >= len(c.Entries) {
			exitOn(fmt.Errorf("corpus has %d entries, no ID %d", len(c.Entries), *entry))
		}
		e := c.Entries[*entry]
		prof, seed = e.Profile, e.Seed
		fmt.Printf("replaying entry %d (round %d, op %s, gain %d)\n", e.ID, e.Round, e.Op, e.Gain)
	default:
		if *finding >= len(ck.Findings) {
			exitOn(fmt.Errorf("checkpoint has %d findings, no index %d", len(ck.Findings), *finding))
		}
		f := ck.Findings[*finding]
		prof, seed = f.Profile, f.Seed
		fmt.Printf("replaying finding %d (round %d): %v\n", *finding, f.Round, f.Mismatch)
	}

	cfg, err := env.environment()
	exitOn(err)
	res, err := fuzz.Repro(cfg, prof, seed)
	exitOn(err)
	fmt.Println(res.Summary())
	if res.Mismatch != nil {
		os.Exit(2)
	}
}

// resolveRemoteSpec folds the -transport override into the -remote address
// (same contract as cmd/difftest).
func resolveRemoteSpec(remote, scheme string, p platform.Platform) (string, error) {
	if scheme == "" {
		return remote, nil
	}
	if remote == "" {
		return "", fmt.Errorf("-transport %s needs -remote with an address", scheme)
	}
	switch scheme {
	case "tcp", "unix", "shm":
	default:
		return "", fmt.Errorf("unknown -transport %q (tcp, unix, shm)", scheme)
	}
	spec := scheme + "://" + remote
	if scheme == "shm" && !strings.Contains(remote, "?ring=") && p.ShmRingBytes > 0 {
		spec = fmt.Sprintf("%s?ring=%d", spec, p.ShmRingBytes)
	}
	return spec, nil
}

func pickDUT(name string) (dut.Config, error) {
	switch strings.ToLower(name) {
	case "nutshell":
		return dut.NutShell(), nil
	case "xiangshan-minimal", "minimal":
		return dut.XiangShanMinimal(), nil
	case "xiangshan", "default":
		return dut.XiangShanDefault(), nil
	case "xiangshan-dual", "dual":
		return dut.XiangShanDefaultDual(), nil
	}
	return dut.Config{}, fmt.Errorf("unknown DUT %q", name)
}

func pickPlatform(name string, threads int) (platform.Platform, error) {
	switch strings.ToLower(name) {
	case "palladium", "pldm", "emulator":
		return platform.Palladium(), nil
	case "fpga", "vu19p":
		return platform.FPGA(), nil
	case "verilator", "rtl":
		return platform.Verilator(threads), nil
	}
	return platform.Platform{}, fmt.Errorf("unknown platform %q", name)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "difftest-fuzz:", err)
		os.Exit(1)
	}
}
