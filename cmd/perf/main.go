// Command perf regenerates the performance comparisons: Figure 13 (DUT
// scales × simulation setups), Table 7 (prior-work comparison), and Table 2
// (platform overview).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instrs", experiments.DefaultInstrs, "dynamic instructions per run")
	prior := flag.Bool("prior", false, "also print the prior-work comparison (Table 7)")
	platforms := flag.Bool("platforms", false, "also print the platform overview (Table 2)")
	workers := flag.Int("workers", 0, "concurrent co-simulations per sweep (0 = GOMAXPROCS)")
	flag.Parse()

	experiments.Workers = *workers
	fmt.Println(experiments.Figure13(*instrs))
	if *prior {
		fmt.Println(experiments.Table7(*instrs))
	}
	if *platforms {
		fmt.Println(experiments.Table2())
	}
}
