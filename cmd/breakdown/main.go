// Command breakdown regenerates Table 5 of the paper — the incremental
// speedups from Batch, NonBlock, and Squash on NutShell-Palladium,
// XiangShan-Palladium, and XiangShan-FPGA — plus the executed pipeline's
// measured queue occupancy and backpressure for the same configurations.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instrs", experiments.DefaultInstrs, "dynamic instructions per run")
	workers := flag.Int("workers", 0, "concurrent co-simulations per sweep (0 = GOMAXPROCS)")
	tune := flag.Int("autotune", 0,
		"also run the AIMD auto-tuner for this many rounds per configuration and report fixed-vs-tuned throughput with the controller's decisions (0 = off)")
	flag.Parse()
	experiments.Workers = *workers
	fmt.Println(experiments.Table5(*instrs))
	fmt.Println(experiments.PipelineOccupancy(*instrs))
	if *tune > 0 {
		fmt.Println(experiments.AutotuneOccupancy(*instrs, *tune))
	}
}
