// Command benchjson maintains the repo's machine-readable perf trajectory:
// it runs the canonical benchmark areas, writes one BENCH_<area>.json per
// area, and gates fresh measurements against committed baselines.
//
// Usage:
//
//	benchjson run  [-areas codec,batch] [-count 4] [-out DIR] [-C repo]
//	benchjson compare [-areas ...] OLD_DIR NEW_DIR
//	benchjson gate [-threshold 0.15] [-areas ...] -baseline DIR -fresh DIR
//	benchjson areas
//
// `make bench-json` snapshots the committed baselines, regenerates the
// BENCH_*.json files in place, and gates the fresh numbers against the
// snapshot; CI's bench-trajectory job runs exactly that and uploads the
// fresh JSON as an artifact. To accept a new performance level, commit the
// regenerated files.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/benchjson"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	case "gate":
		cmdGate(os.Args[2:])
	case "areas":
		cmdAreas()
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `benchjson — machine-readable perf trajectory (BENCH_<area>.json)

subcommands:
  run      measure areas and write BENCH_<area>.json files
  compare  diff two directories of BENCH_*.json and print every delta
  gate     like compare, but exit 1 on regressions beyond thresholds
  areas    list the canonical areas and their benchmark surfaces`)
}

// splitAreas parses the -areas list ("" or "all" = every canonical area).
func splitAreas(s string) []string {
	if s == "" || s == "all" {
		return nil
	}
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	areas := fs.String("areas", "all", "comma-separated area names (see `benchjson areas`)")
	count := fs.Int("count", 4, "benchmark repeats per area (-count); medians reduce them")
	out := fs.String("out", ".", "directory to write BENCH_<area>.json files to")
	dir := fs.String("C", ".", "repo root to run `go test -bench` from")
	spreadMax := fs.Float64("max-spread", 0.40, "variance guard: re-run an area once when ns/op (max-min)/median exceeds this")
	quiet := fs.Bool("q", false, "suppress progress output")
	fs.Parse(args)

	r := &benchjson.Runner{Dir: *dir, Count: *count, MaxSpread: *spreadMax}
	if !*quiet {
		r.Logf = func(format string, a ...any) { fmt.Fprintf(os.Stderr, format+"\n", a...) }
	}
	docs, err := r.RunAreas(splitAreas(*areas))
	exitOn(err)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		exitOn(err)
	}
	for _, d := range docs {
		exitOn(d.WriteFile(*out))
		if !*quiet {
			fmt.Fprintf(os.Stderr, "wrote %s/%s (%d benchmarks)\n",
				*out, benchjson.FileName(d.Area), len(d.Benchmarks))
		}
	}
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	areas := fs.String("areas", "all", "comma-separated area names")
	threshold := fs.Float64("threshold", 0, "override the relative time/throughput threshold (0 = default 0.15)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchjson compare [-areas ...] OLD_DIR NEW_DIR")
		os.Exit(2)
	}
	deltas, err := benchjson.Gate(fs.Arg(0), fs.Arg(1), splitAreas(*areas), thresholdFor(*threshold))
	exitOn(err)
	fmt.Print(benchjson.FormatDeltas(deltas))
}

func cmdGate(args []string) {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	areas := fs.String("areas", "all", "comma-separated area names")
	threshold := fs.Float64("threshold", 0, "relative ns/op and instrs/s regression allowance (0 = default 0.15)")
	baseline := fs.String("baseline", ".", "directory holding the committed BENCH_*.json baselines")
	fresh := fs.String("fresh", ".", "directory holding the freshly measured BENCH_*.json files")
	fs.Parse(args)

	th := thresholdFor(*threshold)
	deltas, err := benchjson.Gate(*baseline, *fresh, splitAreas(*areas), th)
	exitOn(err)
	fmt.Print(benchjson.SummarizeGate(deltas, th))
	if len(benchjson.Regressions(deltas)) > 0 {
		os.Exit(1)
	}
}

func cmdAreas() {
	for _, a := range benchjson.Areas() {
		fmt.Printf("%-10s %-45s -benchtime=%-6s %s\n",
			a.Name, strings.Join(a.Packages, ","), a.Benchtime, a.Pattern)
	}
}

// thresholdFor builds the gate policy, overriding the relative time
// threshold when the flag is set.
func thresholdFor(t float64) benchjson.Threshold {
	th := benchjson.DefaultThreshold()
	if t > 0 {
		th.Time = t
	}
	return th
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
