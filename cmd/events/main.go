// Command events regenerates the verification-event census: Figure 4 (event
// sizes and invocation rates), Table 1 (the taxonomy), and Table 4 (DUT
// scales and bytes per instruction).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instrs", experiments.DefaultInstrs, "dynamic instructions per run")
	taxonomy := flag.Bool("taxonomy", false, "print only the event taxonomy (Table 1)")
	scales := flag.Bool("scales", false, "print only the DUT scales (Table 4)")
	flag.Parse()

	switch {
	case *taxonomy:
		fmt.Println(experiments.Table1())
	case *scales:
		fmt.Println(experiments.Table4(*instrs))
	default:
		fmt.Println(experiments.Table1())
		fmt.Println(experiments.Figure4(*instrs))
		fmt.Println(experiments.Table4(*instrs))
	}
}
