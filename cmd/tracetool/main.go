// Command tracetool is the tuning-toolkit front end (paper §5): it dumps DUT
// traces for iterative debugging, re-drives the verification logic from a
// dumped trace without the DUT, and records transmission logs into the SQL
// engine for offline analysis.
//
// Usage:
//
//	tracetool dump    -out run.trace [-workload linux -instrs 100000 -seed 7]
//	tracetool replay  -in  run.trace [-workload linux -instrs 100000 -seed 7]
//	tracetool analyze -in  run.trace      # offline fusion/differencing study
//	tracetool sql     [-query "SELECT ..."] [-workload linux]
//
// replay regenerates the same program image from (workload, instrs, seed),
// so pass the same values used for dump.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analyze"
	"repro/internal/arch"
	"repro/internal/checker"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/sqldb"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		out    = fs.String("out", "run.trace", "trace output path (dump)")
		in     = fs.String("in", "run.trace", "trace input path (replay)")
		wlName = fs.String("workload", "linux", "workload profile")
		instrs = fs.Uint64("instrs", 100_000, "target dynamic instructions")
		seed   = fs.Int64("seed", 7, "workload seed")
		query  = fs.String("query", "", "SQL query over the transmission log (sql)")
	)
	exitOn(fs.Parse(os.Args[2:]))

	wl, ok := workload.ByName(*wlName)
	if !ok {
		exitOn(fmt.Errorf("unknown workload %q", *wlName))
	}
	wl.TargetInstrs = *instrs
	cfg := dut.XiangShanDefault()
	prog := workload.Generate(wl, cfg.Cores, *seed)

	switch cmd {
	case "dump":
		f, err := os.Create(*out)
		exitOn(err)
		defer f.Close()
		w, err := trace.NewWriter(f)
		exitOn(err)
		d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})
		for {
			recs, done := d.StepCycle()
			exitOn(w.WriteCycle(d.CycleCount, recs))
			if done {
				break
			}
		}
		exitOn(w.Close())
		fmt.Printf("dumped %d cycles, %d events to %s\n", w.Cycles, w.Events, *out)

	case "replay":
		f, err := os.Open(*in)
		exitOn(err)
		defer f.Close()
		r, err := trace.NewReader(f)
		exitOn(err)
		chk := checker.New(prog.Image, prog.Entries, cfg.Cores)
		for {
			_, recs, err := r.ReadCycle()
			if err == io.EOF {
				break
			}
			exitOn(err)
			for _, rec := range recs {
				if m := chk.Process(rec); m != nil {
					fmt.Printf("trace replay mismatch: %v\n", m)
					os.Exit(2)
				}
			}
		}
		fin, code := chk.Finished()
		fmt.Printf("replayed %d cycles, %d events: finished=%v code=%d\n",
			r.Cycles, r.Events, fin, code)

	case "analyze":
		f, err := os.Open(*in)
		exitOn(err)
		defer f.Close()
		r, err := trace.NewReader(f)
		exitOn(err)
		rep, err := analyze.Trace(r)
		exitOn(err)
		fmt.Print(rep)

	case "sql":
		db := sqldb.Open()
		_, err := db.CreateTable("tx",
			sqldb.ColumnDef{Name: "cycle", Type: sqldb.TypeInteger},
			sqldb.ColumnDef{Name: "seq", Type: sqldb.TypeInteger},
			sqldb.ColumnDef{Name: "core", Type: sqldb.TypeInteger},
			sqldb.ColumnDef{Name: "kind", Type: sqldb.TypeText},
			sqldb.ColumnDef{Name: "category", Type: sqldb.TypeText},
			sqldb.ColumnDef{Name: "bytes", Type: sqldb.TypeInteger},
			sqldb.ColumnDef{Name: "nde", Type: sqldb.TypeInteger},
		)
		exitOn(err)
		d := dut.New(cfg, prog.Image, prog.Entries, arch.Hooks{})
		for {
			recs, done := d.StepCycle()
			for _, rec := range recs {
				k := rec.Ev.Kind()
				nde := int64(0)
				if event.IsNDE(rec.Ev) {
					nde = 1
				}
				exitOn(db.Insert("tx",
					int64(d.CycleCount), int64(rec.Seq), int64(rec.Core),
					k.String(), event.CategoryOf(k).String(),
					int64(event.SizeOf(k)), nde))
			}
			if done {
				break
			}
		}
		q := *query
		if q == "" {
			q = `SELECT kind, COUNT(*) AS n, SUM(bytes) AS volume FROM tx
			     GROUP BY kind ORDER BY volume DESC LIMIT 12`
		}
		res, err := db.Exec(q)
		exitOn(err)
		fmt.Print(res)

	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracetool dump|replay|analyze|sql [flags]")
	os.Exit(1)
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracetool:", err)
		os.Exit(1)
	}
}
