// Command difftestd is the networked verification server: it accepts
// concurrent DUT sessions over TCP, a Unix-domain socket, or a same-host
// shared-memory ring, gives each its own reference models and checker
// (built from the session handshake), and
// streams verdicts back over the framed transport. The per-session token
// window bounds how many data frames a client may have in flight — the
// networked analogue of Replay's token-managed buffering (paper §4.4).
//
// Usage:
//
//	difftestd -listen :9740                    # TCP
//	difftestd -listen unix:/tmp/difftestd.sock # Unix-domain socket
//	difftestd -listen shm:///dev/shm/difftest  # shared-memory ring rendezvous
//
// Clients connect with `difftest -remote <addr>`. SIGINT/SIGTERM drain
// gracefully: listeners close, in-flight sessions get -grace to finish, and
// the process reports its lifetime counters and buffer-pool balance.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cosim"
	"repro/internal/event"
	"repro/internal/transport"
)

func main() {
	var (
		listen = flag.String("listen", ":9740",
			"listen address: tcp://host:port (or bare host:port), unix:///path, or shm:///dir for the same-host shared-memory ring")
		tokens = flag.Int("tokens", transport.DefaultWindow,
			"token window per session (max in-flight data frames)")
		idle = flag.Duration("idle", transport.DefaultIdleTimeout,
			"reap sessions with no inbound frame for this long")
		maxSessions = flag.Int("max-sessions", 0,
			"cap concurrent sessions (0 = unlimited)")
		resumeWindow = flag.Duration("resume-window", 0,
			"park broken sessions this long for client resume (0 = resume disabled)")
		grace = flag.Duration("grace", 10*time.Second,
			"how long to let in-flight sessions finish on SIGINT/SIGTERM")
		verbose = flag.Bool("v", false, "log per-session lifecycle events")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "difftestd: ", log.LstdFlags)
	cfg := transport.ServerConfig{
		NewSession:   cosim.NewSession,
		Window:       *tokens,
		IdleTimeout:  *idle,
		MaxSessions:  *maxSessions,
		ResumeWindow: *resumeWindow,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	srv := transport.NewServer(cfg)

	l, err := transport.Listen(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("listening on %s (window %d, idle %v, resume window %v, wire digest %#x)",
		l.Addr(), *tokens, *idle, *resumeWindow, event.FormatDigest())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("signal received, draining (%d active, grace %v)", srv.ActiveSessions(), *grace)
		drainCtx, done := context.WithTimeout(context.Background(), *grace)
		err := srv.Shutdown(drainCtx)
		done()
		if err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}

	served, mismatches, reaped := srv.Stats()
	parked, resumed := srv.ResumeStats()
	gets, puts := event.PoolStats()
	logger.Printf("served %d session(s), %d mismatch verdict(s), %d reaped idle", served, mismatches, reaped)
	if *resumeWindow > 0 {
		logger.Printf("resume: %d session(s) parked, %d resume(s) served", parked, resumed)
	}
	logger.Printf("buffer pool: %d gets, %d puts, %d leaked", gets, puts, gets-puts)
	if gets != puts {
		fmt.Fprintln(os.Stderr, "difftestd: pooled buffers leaked")
		os.Exit(1)
	}
}
