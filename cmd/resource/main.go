// Command resource regenerates Figure 15 of the paper: the gate-count cost
// of the verification hardware with and without the Batch packing unit.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Println(experiments.Figure15())
}
