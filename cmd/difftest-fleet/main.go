// Command difftest-fleet fronts N difftestd shards with one stateless
// router: clients dial it exactly like a single difftestd (`difftest
// -remote <router>`), and the router places each session on a shard by
// rendezvous hashing, enforces per-tenant quotas and fair-share token
// windows, and migrates live sessions off dead or draining shards through
// the client's own resume machinery.
//
// Usage:
//
//	difftest-fleet -listen :9750 -shards tcp://h1:9740,tcp://h2:9740
//	difftest-fleet -listen :9750 -shards ... -quota 'ci=8:0.5,*=0:1'
//
// Admin verbs against a running router:
//
//	difftest-fleet -addr :9750 -stats             # fleet + per-shard health
//	difftest-fleet -addr :9750 -drain tcp://h1:9740
//	difftest-fleet -addr :9750 -undrain tcp://h1:9740
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/event"
	"repro/internal/fleet"
	"repro/internal/transport"

	// Register the shm:// scheme so shard specs and the listen spec accept
	// the same-host shared-memory rendezvous difftestd does.
	_ "repro/internal/transport/shmring"
)

func main() {
	var (
		listen = flag.String("listen", ":9750",
			"listen address: tcp://host:port (or bare host:port), unix:///path, or shm:///dir")
		shardList = flag.String("shards", "",
			"comma-separated shard endpoints (difftestd addresses); required to serve")
		quotas = flag.String("quota", "",
			"per-tenant policy 'name=maxSessions:share,...'; '*' keys the default tenant")
		statsInterval = flag.Duration("stats-interval", time.Second,
			"shard health-poll cadence")
		resumeWindow = flag.Duration("resume-window", transport.DefaultResumeWindow,
			"keep broken sessions' journals this long for client resume/migration")
		grace = flag.Duration("grace", 10*time.Second,
			"how long to let in-flight handlers finish on SIGINT/SIGTERM")
		verbose = flag.Bool("v", false, "log per-session lifecycle events")

		addr    = flag.String("addr", "", "router address for the admin verbs below")
		stats   = flag.Bool("stats", false, "poll the router at -addr and print fleet health")
		drain   = flag.String("drain", "", "withdraw this shard from the router at -addr")
		undrain = flag.String("undrain", "", "return this shard to the router at -addr")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "difftest-fleet: ", log.LstdFlags)

	if *stats || *drain != "" || *undrain != "" {
		if *addr == "" {
			logger.Fatal("admin verbs need -addr <router>")
		}
		if err := admin(*addr, *stats, *drain, *undrain); err != nil {
			logger.Fatal(err)
		}
		return
	}

	if *shardList == "" {
		logger.Fatal("-shards is required (or use an admin verb with -addr)")
	}
	shards, err := fleet.ParseShards(*shardList)
	if err != nil {
		logger.Fatal(err)
	}
	q, err := parseQuotas(*quotas)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := fleet.Config{
		Shards:        shards,
		Quotas:        q,
		StatsInterval: *statsInterval,
		ResumeWindow:  *resumeWindow,
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	r, err := fleet.NewRouter(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	l, err := transport.Listen(*listen)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("routing %d shard(s) on %s (wire digest %#x)", len(shards), l.Addr(), event.FormatDigest())

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- r.Serve(l) }()

	select {
	case err := <-serveErr:
		if err != nil {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("signal received, shutting down (grace %v)", *grace)
		drainCtx, done := context.WithTimeout(context.Background(), *grace)
		err := r.Shutdown(drainCtx)
		done()
		if err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}

	st := r.StatsInfo()
	gets, puts := event.PoolStats()
	logger.Printf("served %d session(s), %d mismatch verdict(s), %d migration(s), %d refused",
		st.Served, st.Mismatches, st.Migrations, r.Refused())
	logger.Printf("buffer pool: %d gets, %d puts, %d leaked", gets, puts, gets-puts)
	if gets != puts {
		fmt.Fprintln(os.Stderr, "difftest-fleet: pooled buffers leaked")
		os.Exit(1)
	}
}

// parseQuotas parses 'tenant=maxSessions:share,...' ('*' = default tenant).
func parseQuotas(spec string) (map[string]fleet.Quota, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := make(map[string]fleet.Quota)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, policy, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("quota %q: want tenant=maxSessions:share", part)
		}
		maxStr, shareStr, ok := strings.Cut(policy, ":")
		if !ok {
			return nil, fmt.Errorf("quota %q: want tenant=maxSessions:share", part)
		}
		max, err := strconv.Atoi(maxStr)
		if err != nil {
			return nil, fmt.Errorf("quota %q: maxSessions: %v", part, err)
		}
		share, err := strconv.ParseFloat(shareStr, 64)
		if err != nil {
			return nil, fmt.Errorf("quota %q: share: %v", part, err)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("quota %q: tenant repeated", part)
		}
		out[name] = fleet.Quota{MaxSessions: max, Share: share}
	}
	return out, nil
}

// admin runs one admin verb against a live router.
func admin(addr string, stats bool, drain, undrain string) error {
	conn, err := transport.DialFrame(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	conn.SetWriteTimeout(10 * time.Second)
	conn.SetReadTimeout(10 * time.Second)

	if stats {
		if err := conn.WriteFrame(transport.FrameStats, nil); err != nil {
			return err
		}
		var st transport.StatsInfo
		if err := readReply(conn, transport.FrameStats, &st); err != nil {
			return err
		}
		fmt.Printf("fleet: active=%d served=%d mismatches=%d migrations=%d parked=%d resumed=%d\n",
			st.Active, st.Served, st.Mismatches, st.Migrations, st.Parked, st.Resumed)
		for _, sh := range st.Shards {
			fmt.Printf("shard %-32s %-8s placed=%d active=%d served=%d capacity=%d\n",
				sh.Addr, sh.State, sh.Sessions, sh.Active, sh.Served, sh.Capacity)
		}
		return nil
	}

	req := transport.DrainRequest{Shard: drain}
	if undrain != "" {
		req = transport.DrainRequest{Shard: undrain, Undrain: true}
	}
	b, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	if err := conn.WriteFrame(transport.FrameDrain, b); err != nil {
		return err
	}
	var reply transport.DrainReply
	if err := readReply(conn, transport.FrameDrain, &reply); err != nil {
		return err
	}
	fmt.Printf("shard %s: %s, %d session(s) redirected\n", reply.Shard, reply.State, reply.Redirected)
	return nil
}

// readReply reads one frame, expecting want (or a relayed ErrorInfo).
func readReply(conn transport.FrameTransport, want uint8, v any) error {
	h, payload, err := conn.ReadFrame()
	if err != nil {
		return err
	}
	defer conn.ReleasePayload(payload)
	if h.Type == transport.FrameErrorInfo {
		var ei transport.ErrorInfo
		if err := json.Unmarshal(payload, &ei); err != nil {
			return err
		}
		return &ei
	}
	if h.Type != want {
		return fmt.Errorf("unexpected reply frame type %d", h.Type)
	}
	return json.Unmarshal(payload, v)
}
