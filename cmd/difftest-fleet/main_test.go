package main

import (
	"reflect"
	"testing"

	"repro/internal/fleet"
)

func TestParseQuotas(t *testing.T) {
	got, err := parseQuotas("ci=8:0.5, *=0:1 ,batch=2:0.25")
	if err != nil {
		t.Fatalf("valid quota spec rejected: %v", err)
	}
	want := map[string]fleet.Quota{
		"ci":    {MaxSessions: 8, Share: 0.5},
		"*":     {MaxSessions: 0, Share: 1},
		"batch": {MaxSessions: 2, Share: 0.25},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseQuotas: got %v, want %v", got, want)
	}

	if got, err := parseQuotas("  "); err != nil || got != nil {
		t.Errorf("empty spec: got %v, %v; want nil, nil", got, err)
	}

	for _, bad := range []string{
		"ci",              // no policy
		"=8:0.5",          // no tenant
		"ci=8",            // no share
		"ci=many:0.5",     // bad maxSessions
		"ci=8:half",       // bad share
		"ci=8:0.5,ci=9:1", // repeated tenant
	} {
		if _, err := parseQuotas(bad); err == nil {
			t.Errorf("parseQuotas(%q) accepted", bad)
		}
	}
}
