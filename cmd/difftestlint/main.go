// Command difftestlint runs the project's static-analysis suite — the
// wirestruct, poolcheck, useafterrelease, and kindswitch analyzers from
// internal/lint — over the given package patterns, printing one
// file:line:col finding per violated invariant and exiting non-zero when
// anything is found.
//
// Usage:
//
//	difftestlint [-analyzers a,b] [-dir moduleRoot] [patterns...]
//
// Patterns default to ./... and are resolved with `go list`. The binary
// also speaks the `go vet -vettool` protocol, so
//
//	go vet -vettool=$(pwd)/bin/difftestlint ./...
//
// runs the same analyzers through the go command's per-package cache.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The vettool handshake (-V=full / -flags / pkg.cfg) bypasses the CLI.
	if handled, code := lint.RunVetTool(os.Args[0], os.Args[1:], os.Stdout, os.Stderr); handled {
		os.Exit(code)
	}

	var (
		analyzerList = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		dir          = flag.String("dir", "", "directory to resolve patterns from (default: current)")
		docs         = flag.Bool("doc", false, "print each analyzer's enforced invariant and exit")
	)
	flag.Parse()

	if *docs {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	var names []string
	if *analyzerList != "" {
		names = strings.Split(*analyzerList, ",")
	}
	analyzers, unknown := lint.ByName(names)
	if unknown != "" {
		fmt.Fprintf(os.Stderr, "difftestlint: unknown analyzer %q (have:", unknown)
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, " %s", a.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
		os.Exit(2)
	}

	findings, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "difftestlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
}
