// Command difftestlint runs the project's static-analysis suite — the
// wirestruct, poolcheck, useafterrelease, kindswitch, atomicfield,
// deadlinepair, and framekind analyzers from internal/lint — over the given
// package patterns, printing one file:line:col finding per violated
// invariant and exiting non-zero when anything is found.
//
// Usage:
//
//	difftestlint [-analyzers a,b] [-dir moduleRoot] [-format text|sarif] [-o file] [-audit] [patterns...]
//
// Patterns default to ./... and are resolved with `go list`. -format=sarif
// emits a SARIF 2.1.0 log (suppressed findings included, with their
// //lint:ignore justifications) for CI annotation tooling; -o redirects the
// report to a file. -audit prints the suppression inventory — every
// //lint:ignore directive with its reason and what it silences — and fails
// on stale directives that suppress nothing.
//
// The binary also speaks the `go vet -vettool` protocol, so
//
//	go vet -vettool=$(pwd)/bin/difftestlint ./...
//
// runs the same analyzers through the go command's per-package cache.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The vettool handshake (-V=full / -flags / pkg.cfg) bypasses the CLI.
	if handled, code := lint.RunVetTool(os.Args[0], os.Args[1:], os.Stdout, os.Stderr); handled {
		os.Exit(code)
	}

	var (
		analyzerList = flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
		dir          = flag.String("dir", "", "directory to resolve patterns from (default: current)")
		docs         = flag.Bool("doc", false, "print each analyzer's enforced invariant and exit")
		format       = flag.String("format", "text", "report format: text or sarif")
		out          = flag.String("o", "", "write the report to this file (default: stdout)")
		audit        = flag.Bool("audit", false, "print the //lint:ignore inventory and fail on stale directives")
	)
	flag.Parse()

	if *docs {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "difftestlint: unknown format %q (have: text, sarif)\n", *format)
		os.Exit(2)
	}

	var names []string
	if *analyzerList != "" {
		names = strings.Split(*analyzerList, ",")
	}
	analyzers, unknown := lint.ByName(names)
	if unknown != "" {
		fmt.Fprintf(os.Stderr, "difftestlint: unknown analyzer %q (have:", unknown)
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, " %s", a.Name)
		}
		fmt.Fprintln(os.Stderr, ")")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := lint.NewLoader(*dir)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
		os.Exit(2)
	}

	rep, err := lint.RunReport(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
		os.Exit(2)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}

	if *audit {
		os.Exit(runAudit(w, rep))
	}

	switch *format {
	case "sarif":
		base, _ := os.Getwd()
		if *dir != "" {
			base = *dir
		}
		if err := lint.WriteSARIF(w, analyzers, rep, base); err != nil {
			fmt.Fprintf(os.Stderr, "difftestlint: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range rep.Findings {
			fmt.Fprintln(w, f.String())
		}
	}
	if len(rep.Findings) > 0 {
		fmt.Fprintf(os.Stderr, "difftestlint: %d finding(s) in %d package(s)\n", len(rep.Findings), len(pkgs))
		os.Exit(1)
	}
}

// runAudit prints every //lint:ignore directive with its justification and
// suppression count, returning exit code 1 when any directive is stale.
// (Stale directives also fail a plain run as DriverName findings; the audit
// is the human-readable inventory of what the tree has excused and why.)
func runAudit(w io.Writer, rep lint.Report) int {
	counts := make(map[string]int)
	for _, s := range rep.Suppressed {
		counts[s.DirectivePos.String()]++
	}
	stale := 0
	for _, d := range rep.Directives {
		status := fmt.Sprintf("suppresses %d finding(s)", counts[d.Pos.String()])
		if !d.Used {
			status = "STALE: suppresses nothing"
			stale++
		}
		fmt.Fprintf(w, "%s: //lint:ignore %s — %s (%s)\n", d.Pos, d.Analyzer, d.Reason, status)
	}
	fmt.Fprintf(w, "difftestlint: %d directive(s), %d suppression(s), %d stale\n",
		len(rep.Directives), len(rep.Suppressed), stale)
	if stale > 0 {
		return 1
	}
	return 0
}
