// Command overhead regenerates Figure 2 of the paper: the LogGP overhead
// breakdown (communication startup, data transmission, software processing)
// of baseline co-simulation across DUTs and platforms.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	instrs := flag.Uint64("instrs", experiments.DefaultInstrs, "dynamic instructions per run")
	flag.Parse()
	fmt.Println(experiments.Figure2(*instrs))
}
