# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact gates
# CI enforces, in the same order.

GO ?= go

.PHONY: build test race vet lint fmt-check generate-check bench-codec fuzz-smoke bench-smoke bench-json fuzz-campaign integration cover ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	$(GO) vet -copylocks -loopclosure ./...

# Project-specific static analysis (cmd/difftestlint): wire-struct layout,
# pool release discipline, use-after-release, Kind-switch exhaustiveness,
# atomic-word access discipline, deadline arm/clear pairing, and frame-kind
# dispatch exhaustiveness. Four gates, all enforced:
#   - standalone: difftestlint ./...      (non-test sources, full repo walk)
#   - audit:      difftestlint -audit     (fails on stale //lint:ignore)
#   - SARIF:      bin/lint.sarif          (machine-readable, uploaded by CI)
#   - vettool:    go vet -vettool=...     (includes _test.go files)
lint:
	$(GO) build -o bin/difftestlint ./cmd/difftestlint
	./bin/difftestlint ./...
	./bin/difftestlint -audit ./...
	./bin/difftestlint -format=sarif -o bin/lint.sarif ./...
	$(GO) vet -vettool=$(CURDIR)/bin/difftestlint ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

# The wire codec is generated (internal/event/gen); a hand-edited or stale
# codec_gen.go must fail CI, not silently ship a drifted layout.
generate-check:
	$(GO) generate ./...
	@git diff --exit-code -- internal/event/codec_gen.go || \
		{ echo "codec_gen.go is stale: commit the output of 'go generate ./...'" >&2; exit 1; }

# Codec/batch microbenchmarks plus the checked-in allocs/op budgets
# (internal/event/testdata/alloc_budget.txt, internal/batch/testdata/...).
bench-codec:
	$(GO) test -run='^$$' -bench='BenchmarkCodecRoundTrip|BenchmarkBatchPack|BenchmarkBatchUnpack' \
		-benchmem -benchtime=1000x ./internal/event ./internal/batch
	$(GO) test -run='TestAllocBudget' -v ./internal/event ./internal/batch

fuzz-smoke:
	$(GO) test -fuzz=FuzzCodecRoundTrip -fuzztime=10s -run='^$$' ./internal/event
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=10s -run='^$$' ./internal/transport
	$(GO) test -fuzz=FuzzResumeFrame -fuzztime=10s -run='^$$' ./internal/transport
	$(GO) test -fuzz=FuzzFaultedFrameStream -fuzztime=10s -run='^$$' ./internal/transport
	$(GO) test -fuzz=FuzzShmRingFrame -fuzztime=10s -run='^$$' ./internal/transport/shmring

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Perf trajectory gate (cmd/benchjson): snapshot the committed BENCH_*.json
# baselines, regenerate them in place from fresh benchmark runs, and fail on
# regressions beyond the thresholds (see DESIGN.md "Perf trajectory").
# bench-out/ keeps both the snapshot and the fresh JSON; CI's bench-trajectory
# job runs exactly this target and uploads bench-out/ as an artifact. To
# accept a new performance level, commit the regenerated BENCH_*.json files.
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	rm -rf bench-out && mkdir -p bench-out/baseline
	cp BENCH_*.json bench-out/baseline/
	./bin/benchjson run -out .
	cp BENCH_*.json bench-out/
	./bin/benchjson gate -baseline bench-out/baseline -fresh .

# Coverage-guided fuzzer smoke, through the real CLI: a clean cold-corpus
# campaign whose checkpoint round-trips through min and repro, then a
# rediscovery drill that must find the injected bug within the budget (the
# campaign and the finding replay both exit 2 — the bug-hunting success exit).
fuzz-campaign:
	$(GO) build -o bin/difftest-fuzz ./cmd/difftest-fuzz
	rm -rf bin/fuzz-campaign && mkdir -p bin/fuzz-campaign
	./bin/difftest-fuzz campaign -workload linux -runs 48 -seed 1 -corpus bin/fuzz-campaign/corpus.json
	./bin/difftest-fuzz min -corpus bin/fuzz-campaign/corpus.json -o bin/fuzz-campaign/corpus.min.json
	./bin/difftest-fuzz repro -corpus bin/fuzz-campaign/corpus.min.json -entry 0
	./bin/difftest-fuzz campaign -workload kvm -bug mtval-wrong-guest-fault -threshold 2 \
		-runs 64 -stop-on-mismatch -seed 1 -corpus bin/fuzz-campaign/bug.json; test $$? -eq 2
	./bin/difftest-fuzz repro -bug mtval-wrong-guest-fault -threshold 2 \
		-corpus bin/fuzz-campaign/bug.json -finding 0; test $$? -eq 2

# Networked loopback gate: a real difftestd-equivalent server on a Unix
# socket, concurrent sessions (one injected-bug mismatching, one clean, plus
# a 5-session fan-in), token-window stalls, cancellation — all under -race,
# with the buffer pool balanced across both ends of the wire. The fault
# matrix crosses every faultnet fault with clean and bugged workloads and
# gates on verdict equivalence with the in-process checker; TestDegraded
# pins graceful degradation when the retry budget runs out. The fleet chaos
# gate routes sessions through the multi-shard router, kills a shard
# mid-run, and requires migrated sessions to reach byte-identical verdicts
# (and the full bug library to route with verdict equivalence).
integration:
	$(GO) test -race -count=1 -run='TestLoopback|TestRemoteCancellation|TestFaultMatrix|TestDegraded' -v ./internal/cosim
	$(GO) test -race -count=1 -run='TestFleetChaosMigration|TestFleetAllShardsDeadDegrades|TestFleetBugLibraryEquivalence' -v ./internal/fleet
	$(GO) test -race -count=1 -run='TestFuzzRediscoversBugLibrary|TestFuzzBeatsRandomControl|TestCampaignDeterministicAcrossWorkers|TestExitSequenceSurvivesTimerInterrupt' -v ./internal/fuzz

# Per-package statement coverage with a floor on the packages that carry the
# fault-injection and resume machinery: a change that quietly drops their
# tests fails here, not in review. Floors live in scripts/coverfloor.sh;
# baselines are recorded in DESIGN.md.
cover:
	./scripts/coverfloor.sh

ci: build test race vet lint fmt-check generate-check bench-codec fuzz-smoke bench-smoke bench-json fuzz-campaign cover integration
