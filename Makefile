# Local mirror of .github/workflows/ci.yml — `make ci` runs the exact gates
# CI enforces, in the same order.

GO ?= go

.PHONY: build test race vet fmt-check bench-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "files need gofmt:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi

bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

ci: build test race vet fmt-check bench-smoke
