package difftest

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§6), plus ablation benches for the design decisions DESIGN.md
// calls out and micro-benchmarks of the communication pipeline stages.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates its experiment's rows (visible with -v via
// b.Log); the commands under cmd/ print the same reports standalone.

import (
	"testing"

	"repro/internal/batch"
	"repro/internal/cosim"
	"repro/internal/dut"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/platform"
	"repro/internal/wire"
	"repro/internal/workload"
)

// benchInstrs keeps per-iteration runs short; speeds and shares are
// throughput ratios, so they are insensitive to run length.
const benchInstrs = 15_000

func logOnce(b *testing.B, printed *bool, r *experiments.Report) {
	if !*printed {
		b.Log("\n" + r.String())
		*printed = true
	}
}

// --- Tables ---

func BenchmarkTable1EventTaxonomy(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table1())
	}
}

func BenchmarkTable2Platforms(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table2())
	}
}

func BenchmarkTable4DUTScales(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table4(benchInstrs))
	}
}

func BenchmarkTable5Breakdown(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table5(benchInstrs))
	}
}

func BenchmarkTable6BugInventory(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table6())
	}
}

func BenchmarkTable7PriorWork(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Table7(benchInstrs))
	}
}

// --- Figures ---

func BenchmarkFigure2OverheadBreakdown(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Figure2(benchInstrs))
	}
}

func BenchmarkFigure4EventCensus(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Figure4(benchInstrs))
	}
}

func BenchmarkFigure13Performance(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Figure13(benchInstrs))
	}
}

func BenchmarkFigure14BugDetection(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Figure14(60_000))
	}
}

func BenchmarkFigure15Resources(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.Figure15())
	}
}

// --- Ablations (DESIGN.md key decisions) ---

func BenchmarkAblationPacketSize(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.AblationPacketSize(benchInstrs))
	}
}

func BenchmarkAblationFusionWindow(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.AblationFusionWindow(benchInstrs))
	}
}

func BenchmarkSquashVsCoupled(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.AblationOrderCoupling(benchInstrs))
	}
}

func BenchmarkReplayVsSnapshot(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.AblationReplayVsSnapshot(20_000))
	}
}

func BenchmarkBatchVsFixedOffset(b *testing.B) {
	wl := workload.LinuxBoot()
	wl.TargetInstrs = benchInstrs
	optEB, _ := cosim.ParseConfig("EB")
	fixed := optEB
	fixed.FixedOffset = true
	printed := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tight, err := cosim.Run(cosim.Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
			Opt: optEB, Workload: wl, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		fx, err := cosim.Run(cosim.Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
			Opt: fixed, Workload: wl, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !printed {
			b.Logf("tight packing: %d transfers; fixed-offset: %d transfers (%.2fx)",
				tight.Invokes, fx.Invokes, float64(fx.Invokes)/float64(tight.Invokes))
			printed = true
		}
	}
}

// --- Per-configuration co-simulation throughput ---

func benchConfig(b *testing.B, cfg string) {
	wl := workload.LinuxBoot()
	wl.TargetInstrs = benchInstrs
	opt, err := cosim.ParseConfig(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var cycles, instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cosim.Run(cosim.Params{
			DUT: dut.XiangShanDefault(), Platform: platform.Palladium(),
			Opt: opt, Workload: wl, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Mismatch != nil {
			b.Fatalf("mismatch: %v", res.Mismatch)
		}
		cycles = res.Cycles
		instrs = res.Instrs
	}
	b.ReportMetric(float64(cycles), "DUTcycles/op")
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkCosimBaselineZ(b *testing.B)    { benchConfig(b, "Z") }
func BenchmarkCosimBatchEB(b *testing.B)      { benchConfig(b, "EB") }
func BenchmarkCosimNonBlockEBIN(b *testing.B) { benchConfig(b, "EBIN") }
func BenchmarkCosimSquashEBINSD(b *testing.B) { benchConfig(b, "EBINSD") }

// --- Pipeline stage micro-benchmarks ---

func monitorCycleItems(n int) [][]wire.Item {
	prog := workload.Generate(workload.LinuxBoot(), 1, 7)
	d := dut.New(dut.XiangShanDefault(), prog.Image, prog.Entries, Hooks{})
	var out [][]wire.Item
	for len(out) < n {
		recs, done := d.StepCycle()
		if len(recs) > 0 {
			out = append(out, wire.FromRecords(recs))
		}
		if done {
			break
		}
	}
	return out
}

func BenchmarkBatchPackerThroughput(b *testing.B) {
	cycles := monitorCycleItems(256)
	p := batch.NewPacker(4096)
	var bytes int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkt := range p.AddCycle(cycles[i%len(cycles)]) {
			bytes += int64(len(pkt.Buf))
			pkt.Release()
		}
	}
	b.SetBytes(bytes / int64(b.N+1))
}

func BenchmarkBatchUnpackerThroughput(b *testing.B) {
	cycles := monitorCycleItems(256)
	p := batch.NewPacker(4096)
	var pkts []batch.Packet
	for _, c := range cycles {
		pkts = append(pkts, p.AddCycle(c)...)
	}
	pkts = append(pkts, p.Flush()...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var u batch.Unpacker
		for _, pkt := range pkts {
			if _, err := u.AddPacket(pkt.Buf); err != nil {
				b.Fatal(err)
			}
		}
		u.Flush()
	}
}

func BenchmarkEventEncodeAll(b *testing.B) {
	evs := make([]event.Event, 0, event.NumKinds)
	for k := event.Kind(0); k < event.NumKinds; k++ {
		evs = append(evs, event.InfoOf(k).New())
	}
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = event.Encode(buf[:0], evs[i%len(evs)])
	}
}

func BenchmarkMonitorCycle(b *testing.B) {
	prog := workload.Generate(workload.LinuxBoot(), 1, 7)
	d := dut.New(dut.XiangShanDefault(), prog.Image, prog.Entries, Hooks{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, done := d.StepCycle(); done {
			b.StopTimer()
			d = dut.New(dut.XiangShanDefault(), prog.Image, prog.Entries, Hooks{})
			b.StartTimer()
		}
	}
}

func BenchmarkDetectionLatency(b *testing.B) {
	printed := false
	for i := 0; i < b.N; i++ {
		logOnce(b, &printed, experiments.DetectionLatency(120_000))
	}
}
