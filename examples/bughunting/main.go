// Bughunting injects a latent memory-subsystem bug from the library (it
// manifests only after hundreds of trigger occurrences, like the paper's
// bugs that need millions of cycles), detects it with the fully fused
// pipeline, and prints Replay's instruction-level localization.
package main

import (
	"fmt"
	"log"

	difftest "repro"
)

func main() {
	bug, ok := difftest.BugByID("load-sign-extension")
	if !ok {
		log.Fatal("bug library missing load-sign-extension")
	}
	fmt.Printf("injecting %s (%s):\n  %s\n\n", bug.ID, bug.PR, bug.Description)

	wl := difftest.LinuxBoot()
	wl.TargetInstrs = 150_000

	res, err := difftest.Run(difftest.Params{
		DUT:      difftest.XiangShanDefault(),
		Platform: difftest.Palladium(),
		Opt:      difftest.FullOptimizations(),
		Workload: wl,
		Seed:     21,
		Hooks:    bug.Hooks(0),
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Mismatch == nil {
		log.Fatal("bug escaped detection — should not happen")
	}

	fmt.Printf("detected at cycle %d (%.1f KHz co-simulation):\n  %v\n\n",
		res.Cycles, res.SpeedHz/1e3, res.Mismatch)
	if res.Replay != nil {
		fmt.Println(res.Replay)
	}

	// The paper's comparison: the same cycle count on 16-thread Verilator.
	veri := difftest.Verilator(16)
	tVeri := float64(res.Cycles) / (veri.DUTOnlyHz(57.6) * veri.CosimEff)
	tHere := float64(res.Cycles) / res.SpeedHz
	fmt.Printf("reaching this cycle takes %.2fs here vs %.2fs on 16-thread Verilator (%.0fx)\n",
		tHere, tVeri, tVeri/tHere)
}
