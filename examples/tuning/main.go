// Tuning demonstrates the DiffTest-H tuning toolkit (paper §5):
// (1) performance counters from a run, (2) DUT-trace dump and checker
// re-drive for iterative debugging, and (3) SQL analysis of the
// transmission log to find fusion/differencing opportunities.
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"

	difftest "repro"
)

func main() {
	wl := difftest.Microbench()
	wl.TargetInstrs = 50_000

	// (1) Performance counters.
	res, err := difftest.Run(difftest.Params{
		DUT:      difftest.XiangShanDefault(),
		Platform: difftest.FPGA(),
		Opt:      difftest.FullOptimizations(),
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— performance counters —")
	fmt.Printf("transfers: %d, wire bytes: %d, packet utilization: %.2f\n",
		res.Invokes, res.WireBytes, res.PacketUtilation)
	fmt.Printf("fusion ratio: %.1f (windows %d, diffs %d, NDEs ahead %d)\n",
		res.Fusion.FusionRatio(), res.Fusion.Windows, res.Fusion.Diffs, res.Fusion.NDEsAhead)

	// (2) Trace dump + reload: a short run dumps its monitor stream, which
	// can then re-drive the verification logic without the DUT.
	var buf bytes.Buffer
	w, err := difftest.NewTraceWriter(&buf)
	if err != nil {
		log.Fatal(err)
	}
	short := wl
	short.TargetInstrs = 10_000
	if _, err := difftest.Run(difftest.Params{
		DUT:      difftest.XiangShanDefault(),
		Platform: difftest.Palladium(),
		Opt:      difftest.Baseline(),
		Workload: short,
		Trace:    w,
	}); err != nil {
		log.Fatal(err)
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	r, err := difftest.NewTraceReader(&buf)
	if err != nil {
		log.Fatal(err)
	}
	events := 0
	for {
		_, recs, err := r.ReadCycle()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		events += len(recs)
	}
	fmt.Printf("\n— trace toolkit —\ndumped a %d-event DUT trace (%d bytes) and reloaded it without the DUT\n",
		events, buf.Cap())

	// (3) SQL analysis: which event kinds dominate transmission volume?
	db := difftest.OpenDB()
	if _, err := db.CreateTable("tx",
		difftest.ColumnDef{Name: "kind", Type: difftest.TypeText},
		difftest.ColumnDef{Name: "category", Type: difftest.TypeText},
		difftest.ColumnDef{Name: "bytes", Type: difftest.TypeInteger},
	); err != nil {
		log.Fatal(err)
	}
	for k := 0; k < difftest.NumEventKinds; k++ {
		kind := difftest.EventKind(k)
		if err := db.Insert("tx", kind.String(), difftest.EventCategory(kind),
			difftest.EventSize(kind)); err != nil {
			log.Fatal(err)
		}
	}
	out, err := db.Exec(`SELECT category, COUNT(*) AS kinds, SUM(bytes) AS width
	                     FROM tx GROUP BY category ORDER BY width DESC`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n— SQL analysis: interface width by category —")
	fmt.Print(out)
}
