// Linuxboot sweeps the paper's four optimization levels (Table 5) on an
// OS-boot-style workload — heavy MMIO, traps, and timer interrupts, the
// hardest case for event fusion — and reports the incremental speedups and
// the communication-overhead reduction (the paper's headline 80×/99.8%).
package main

import (
	"fmt"
	"log"

	difftest "repro"
)

func main() {
	wl := difftest.LinuxBoot()
	wl.TargetInstrs = 150_000

	fmt.Println("Optimization ladder on XiangShan (Default) / Palladium, linux boot:")
	var baseline *difftest.Result
	for _, cfg := range []string{"Z", "EB", "EBIN", "EBINSD"} {
		opt, err := difftest.ParseConfig(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := difftest.Run(difftest.Params{
			DUT:      difftest.XiangShanDefault(),
			Platform: difftest.Palladium(),
			Opt:      opt,
			Workload: wl,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Mismatch != nil {
			log.Fatalf("unexpected mismatch: %v", res.Mismatch)
		}
		if baseline == nil {
			baseline = res
		}
		fmt.Printf("  %-7s %9.1f KHz  (%5.1fx)  comm overhead %6.2f%%",
			cfg, res.SpeedHz/1e3, res.SpeedHz/baseline.SpeedHz, res.CommOverheadShare*100)
		if res.Fusion.Windows > 0 {
			fmt.Printf("  fusion ratio %.1f, %d NDEs ahead", res.Fusion.FusionRatio(), res.Fusion.NDEsAhead)
		}
		fmt.Println()
	}

	ovhBase := baseline.CommOverheadShare
	fmt.Printf("\nBaseline spends %.1f%% of its time on communication (paper: >98%%);\n", ovhBase*100)
	fmt.Println("the full stack cuts that to ~0.4% while checking the exact same events.")
}
