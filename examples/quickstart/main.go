// Quickstart: run the full DiffTest-H stack on a XiangShan-class DUT for a
// short Linux-boot-profile workload on the Palladium platform model, and
// print the co-simulation verdict and speed.
package main

import (
	"fmt"
	"log"

	difftest "repro"
)

func main() {
	wl := difftest.LinuxBoot()
	wl.TargetInstrs = 100_000

	res, err := difftest.Run(difftest.Params{
		DUT:      difftest.XiangShanDefault(),
		Platform: difftest.Palladium(),
		Opt:      difftest.FullOptimizations(), // Batch + NonBlock + Squash
		Workload: wl,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Summary())
	fmt.Printf("DUT-only ceiling: %.0f KHz — co-simulation reached %.1f%% of it\n",
		res.DUTOnlyHz/1e3, res.SpeedHz/res.DUTOnlyHz*100)
	fmt.Printf("communication overhead: %.2f%% of total time\n", res.CommOverheadShare*100)
}
