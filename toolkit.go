package difftest

import (
	"io"

	"repro/internal/event"
	"repro/internal/sqldb"
	"repro/internal/trace"
)

// Tuning toolkit (paper §5): performance counters are exposed on Result;
// this file exposes the trace dump/reload support (iterative debugging) and
// the SQL engine (offline transmission analysis).

// Trace support.
type (
	// TraceWriter dumps per-cycle verification events.
	TraceWriter = trace.Writer
	// TraceReader replays a dumped trace.
	TraceReader = trace.Reader
	// Event is one verification event.
	Event = event.Event
	// EventRecord is an event with its order tag and core.
	EventRecord = event.Record
	// EventKind identifies one of the 32 verification event types.
	EventKind = event.Kind
)

// NewTraceWriter starts a DUT-trace dump on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// NewTraceReader opens a dumped DUT trace.
func NewTraceReader(r io.Reader) (*TraceReader, error) { return trace.NewReader(r) }

// SQL analysis support.
type (
	// DB is the in-memory SQL database for transmission logs.
	DB = sqldb.DB
	// SQLResult is a query result set.
	SQLResult = sqldb.Result
	// ColumnDef declares a table column.
	ColumnDef = sqldb.ColumnDef
)

// SQL column types.
const (
	TypeInteger = sqldb.TypeInteger
	TypeReal    = sqldb.TypeReal
	TypeText    = sqldb.TypeText
)

// OpenDB returns an empty SQL database.
func OpenDB() *DB { return sqldb.Open() }

// EventSize returns the wire size in bytes of an event kind.
func EventSize(k EventKind) int { return event.SizeOf(k) }

// EventCategory returns the Table-1 category name of an event kind.
func EventCategory(k EventKind) string { return event.CategoryOf(k).String() }

// IsNDE reports whether an event instance is non-deterministic (interrupts,
// MMIO accesses) and must be synchronized into the reference model.
func IsNDE(ev Event) bool { return event.IsNDE(ev) }

// NumEventKinds is the number of verification event types (32).
const NumEventKinds = int(event.NumKinds)
