#!/bin/sh
# coverfloor.sh — per-package statement coverage with enforced floors.
#
# The fault-injection wrapper and the resume protocol are the two places a
# silent test regression would hurt most: both are exercised almost entirely
# by tests, so dropping a test there drops real protection. CI fails when
# either package dips below its floor. Baselines are recorded in DESIGN.md;
# raise a floor when the baseline rises, never lower one to make CI pass.
#
# Usage: scripts/coverfloor.sh  (run from the repo root; `make cover` does)

set -eu

GO="${GO:-go}"

# "import/path floor" pairs. POSIX sh has no arrays; one pair per line.
FLOORS='
repro/internal/transport 85
repro/internal/transport/shmring 85
repro/internal/faultnet 85
repro/internal/benchjson 85
repro/internal/lint 85
repro/internal/fleet 85
repro/internal/fuzz 85
'

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
echo "package                        coverage  floor"
echo "-----------------------------  --------  -----"
echo "$FLOORS" | while read -r pkg floor; do
	[ -n "$pkg" ] || continue
	profile="$tmp/$(echo "$pkg" | tr / _).out"
	if ! $GO test -count=1 -coverprofile="$profile" "$pkg" >"$tmp/test.log" 2>&1; then
		cat "$tmp/test.log" >&2
		echo "coverfloor: tests failed in $pkg" >&2
		exit 1
	fi
	pct="$($GO tool cover -func="$profile" | awk '/^total:/ {sub(/%$/, "", $NF); print $NF}')"
	printf '%-29s  %7s%%  %4s%%\n' "$pkg" "$pct" "$floor"
	# awk handles the fractional comparison; sh arithmetic is integer-only.
	if ! awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p >= f) }'; then
		echo "coverfloor: $pkg at ${pct}% is below the ${floor}% floor" >&2
		exit 1
	fi
done || fail=1

exit "$fail"
